module Gf = Rmc_gf.Gf

let gf = Gf.gf256
let q = 256

let kind = `Rlnc
let label = "Rlnc"
let caps = { Codec_intf.systematic = true; rateless = true }

(* The wire index field is 16-bit and repair j travels as index k + j. *)
let max_repair ~k = 0xFFFF - k

let check_block ~k ~h =
  if k < 1 then invalid_arg (label ^ ".create: k must be >= 1");
  if h < 0 then invalid_arg (label ^ ".create: h must be >= 0");
  if h > max_repair ~k then
    invalid_arg (label ^ ".create: k + h exceeds the 16-bit wire index space")

(* The dense coefficient vector of repair packet [j]: k uniform GF(256)
   bytes from the (k, j)-seeded stream.  The all-zero vector (probability
   256^-k) is re-drawn with a bumped salt so every repair packet is a
   genuine combination; both sides perform the identical redraw. *)
let coefficients ~k ~j =
  let rec attempt salt =
    let prng = Codec_prng.of_block ~k ~j ~salt in
    let row = Array.init k (fun _ -> Codec_prng.byte prng) in
    if Array.exists (fun c -> c <> 0) row then row else attempt (salt + 1)
  in
  attempt 0

let innovation_probability ~k ~rank =
  if rank >= k then 0.0 else 1.0 -. (float_of_int q ** float_of_int (rank - k))

let decode_failure_probability ~k ~received =
  if received < k then 1.0
  else begin
    (* Tsimbalo et al.: a uniform random (received x k) matrix over GF(q)
       has full column rank with probability
       prod_{i=0}^{k-1} (1 - q^(i - received)). *)
    let p_full = ref 1.0 in
    for i = 0 to k - 1 do
      p_full := !p_full *. (1.0 -. (float_of_int q ** float_of_int (i - received)))
    done;
    1.0 -. !p_full
  end

module Encoder = struct
  type t = { k : int; h : int; data : Bytes.t array; payload_len : int }

  let create ~k ~h data =
    check_block ~k ~h;
    if Array.length data <> k then
      invalid_arg (label ^ ".Encoder.create: expected k data packets");
    let payload_len = Bytes.length data.(0) in
    Array.iter
      (fun p ->
        if Bytes.length p <> payload_len then
          invalid_arg (label ^ ".Encoder.create: unequal packet lengths"))
      data;
    { k; h; data; payload_len }

  let k e = e.k
  let h e = e.h

  let repair e j =
    if j < 0 || j >= e.h then invalid_arg (label ^ ".Encoder.repair: index out of range");
    let row = coefficients ~k:e.k ~j in
    let out = Bytes.make e.payload_len '\000' in
    for i = 0 to e.k - 1 do
      let coeff = row.(i) in
      if coeff <> 0 then Gf.mul_add_into gf ~dst:out ~src:e.data.(i) ~coeff
    done;
    out
end

module Decoder = struct
  (* Incremental Gaussian elimination.  [coeffs.(c)]/[payloads.(c)] hold
     the pivot row whose leading 1 sits at column [c] (zero to its left,
     arbitrary to its right — reduction above the diagonal is deferred to
     [decode]).  A new packet is eliminated against the pivots left to
     right; what survives is either a fresh pivot (innovative) or zero
     (linearly dependent, rejected). *)
  type t = {
    k : int;
    h : int;
    coeffs : int array array; (* k pivot rows; row c has lead 1 at c *)
    payloads : Bytes.t array; (* parallel to coeffs *)
    present : bool array; (* pivot installed at column c *)
    direct : bool array; (* data index received verbatim *)
    mutable rank : int;
    mutable payload_len : int; (* -1 until the first add *)
    mutable decoded : bool;
  }

  let create ~k ~h =
    check_block ~k ~h;
    {
      k;
      h;
      coeffs = Array.make k [||];
      payloads = Array.make k Bytes.empty;
      present = Array.make k false;
      direct = Array.make k false;
      rank = 0;
      payload_len = -1;
      decoded = false;
    }

  let received d = d.rank
  let needed d = d.k - d.rank
  let complete d = d.rank >= d.k

  let has_data d index =
    if index < 0 || index >= d.k then
      invalid_arg (label ^ ".Decoder.has_data: index out of range");
    d.direct.(index)

  let missing_data d = List.filter (fun j -> not d.direct.(j)) (List.init d.k Fun.id)

  let add d ~index payload =
    if index < 0 || index >= d.k + d.h then
      invalid_arg (label ^ ".Decoder.add: index out of range");
    if d.payload_len < 0 then d.payload_len <- Bytes.length payload
    else if Bytes.length payload <> d.payload_len then
      invalid_arg (label ^ ".Decoder.add: unequal payload lengths");
    if index < d.k then d.direct.(index) <- true;
    if complete d then false
    else begin
      let row =
        if index < d.k then begin
          let row = Array.make d.k 0 in
          row.(index) <- 1;
          row
        end
        else coefficients ~k:d.k ~j:(index - d.k)
      in
      (* Copy before eliminating: the seam passes ownership, but pivot
         payloads are mutated by later eliminations and by [decode]. *)
      let y = Bytes.copy payload in
      let lead = ref (-1) in
      let c = ref 0 in
      while !c < d.k do
        let coeff = row.(!c) in
        if coeff <> 0 then
          if d.present.(!c) then begin
            (* row -= coeff * pivot(c); subtraction = addition here. *)
            let pivot = d.coeffs.(!c) in
            for e = !c to d.k - 1 do
              row.(e) <- Gf.add row.(e) (Gf.mul gf coeff pivot.(e))
            done;
            Gf.mul_add_into gf ~dst:y ~src:d.payloads.(!c) ~coeff
          end
          else begin
            lead := !c;
            c := d.k (* first surviving column: this is the new pivot *)
          end;
        incr c
      done;
      if !lead < 0 then false
      else begin
        let lead = !lead in
        (* Normalise the pivot to a leading 1. *)
        let inv = Gf.inv gf row.(lead) in
        if inv <> 1 then begin
          for e = lead to d.k - 1 do
            row.(e) <- Gf.mul gf inv row.(e)
          done;
          Gf.mul_into gf ~dst:y ~src:y ~coeff:inv
        end;
        d.coeffs.(lead) <- row;
        d.payloads.(lead) <- y;
        d.present.(lead) <- true;
        d.rank <- d.rank + 1;
        true
      end
    end

  let decode d =
    if not (complete d) then failwith (label ^ ".Decoder.decode: not enough packets");
    if not d.decoded then begin
      (* Back-substitute: clear everything above each diagonal 1, bottom
         up, so payload c becomes data packet c.  Idempotent — the
         cleared coefficients stay zero. *)
      for i = d.k - 1 downto 1 do
        for row = 0 to i - 1 do
          let coeff = d.coeffs.(row).(i) in
          if coeff <> 0 then begin
            Gf.mul_add_into gf ~dst:d.payloads.(row) ~src:d.payloads.(i) ~coeff;
            d.coeffs.(row).(i) <- 0
          end
        done
      done;
      d.decoded <- true
    end;
    Array.init d.k (fun i -> d.payloads.(i))
end
