(* Multicore work pool shared by the FEC datapath and the experiment
   engine.

   Two kinds of work run on the same pool:

   - byte-stripe jobs (encode/decode): each worker owns a disjoint byte
     range of every packet involved, so stripes share nothing but
     immutable coefficient rows and the (read-only) source payloads;
     stripe boundaries are aligned to cache lines to keep writers off
     each other's lines;
   - coarse task jobs ([map] / [map_reduce]): independent simulation
     cells, TG batches, sweep grid points — claimed chunk-by-chunk with
     dynamic scheduling, results gathered positionally so the output is
     independent of which domain ran which task.

   The pool keeps its worker domains alive across calls: batches are
   published under a mutex and claimed task-by-task, with the caller
   participating as the (n+1)-th worker so a pool of [domains = d] uses
   exactly d cores.  Any task exception is captured, the batch drains,
   and the first exception re-raises on the calling domain.  Small
   payloads never reach the pool — below [min_bytes] of kernel work the
   sequential blocked path is faster than the wake-up, so we fall back
   to it (and always when the pool has a single domain, e.g. when
   [Domain.recommended_domain_count () = 1]). *)

module Gf = Rmc_gf.Gf

type pool = {
  domains : int; (* total parallelism including the calling domain *)
  batch_lock : Mutex.t; (* serialises whole batches: one batch at a time *)
  mutex : Mutex.t;
  work : Condition.t; (* signalled when a batch is published *)
  finished : Condition.t; (* signalled when the last task completes *)
  mutable job : (int -> unit) option; (* the current batch, applied per task *)
  mutable next : int; (* next unclaimed task *)
  mutable total : int; (* tasks in the current batch *)
  mutable completed : int;
  mutable error : exn option; (* first task failure, re-raised by the caller *)
  mutable stopping : bool; (* workers drain and exit when set *)
  mutable workers : unit Domain.t list;
}

let domain_count pool = pool.domains

let finish_task pool outcome =
  Mutex.lock pool.mutex;
  (match outcome with
  | Ok () -> ()
  | Error e -> if pool.error = None then pool.error <- Some e);
  pool.completed <- pool.completed + 1;
  if pool.completed >= pool.total then Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let run_task pool job i =
  finish_task pool (match job i with () -> Ok () | exception e -> Error e)

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while
    (not pool.stopping)
    && match pool.job with None -> true | Some _ -> pool.next >= pool.total
  do
    Condition.wait pool.work pool.mutex
  done;
  if pool.stopping then Mutex.unlock pool.mutex
  else begin
    let job = Option.get pool.job in
    let i = pool.next in
    pool.next <- pool.next + 1;
    Mutex.unlock pool.mutex;
    run_task pool job i;
    worker_loop pool
  end

let create_pool ?domains () =
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let domains = max 1 requested in
  let pool =
    {
      domains;
      batch_lock = Mutex.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      next = 0;
      total = 0;
      completed = 0;
      error = None;
      stopping = false;
      workers = [];
    }
  in
  (* Workers park on the condition variable between batches; an idle pool
     costs one blocked thread per domain and nothing else.  [shutdown]
     joins them; otherwise the runtime tears them down with the process. *)
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.batch_lock;
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.batch_lock;
  List.iter Domain.join workers

let default = lazy (create_pool ())
let default_pool () = Lazy.force default

(* Sized pools are memoized: domains are a finite OS resource, and sweep
   entry points taking [~jobs] would otherwise spawn (and strand) a fresh
   worker set per call. *)
let sized_pools : (int, pool) Hashtbl.t = Hashtbl.create 4
let sized_mutex = Mutex.create ()

let pool_sized jobs =
  let jobs = max 1 jobs in
  Mutex.lock sized_mutex;
  let pool =
    match Hashtbl.find_opt sized_pools jobs with
    | Some pool -> pool
    | None ->
      let pool = create_pool ~domains:jobs () in
      Hashtbl.replace sized_pools jobs pool;
      pool
  in
  Mutex.unlock sized_mutex;
  pool

(* Run [job] for every task index in [0, total), the caller claiming
   tasks alongside the workers, and return once all tasks finished. *)
let run_batch pool job total =
  if total = 1 then job 0
  else if total > 0 then begin
    Mutex.lock pool.batch_lock;
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.next <- 0;
    pool.total <- total;
    pool.completed <- 0;
    pool.error <- None;
    Condition.broadcast pool.work;
    let running = ref true in
    while !running do
      if pool.next < pool.total then begin
        let i = pool.next in
        pool.next <- pool.next + 1;
        Mutex.unlock pool.mutex;
        run_task pool job i;
        Mutex.lock pool.mutex
      end
      else if pool.completed < pool.total then Condition.wait pool.finished pool.mutex
      else running := false
    done;
    pool.job <- None;
    let error = pool.error in
    pool.error <- None;
    Mutex.unlock pool.mutex;
    Mutex.unlock pool.batch_lock;
    match error with Some e -> raise e | None -> ()
  end

(* Stripe boundaries: [parts] ranges covering [0, len), every boundary a
   multiple of 64 bytes (cache-line aligned, and even for 16-bit symbols). *)
let stripe_bounds ~len ~parts =
  let align = 64 in
  let stripe = ((len + parts - 1) / parts + align - 1) / align * align in
  Array.init (parts + 1) (fun i -> min len (i * stripe))

let stripe_count pool ~len =
  let align = 64 in
  min pool.domains ((len + align - 1) / align)

(* Task-level sharding for coarse independent jobs (simulation reps, TG
   batches, sweep cells): consecutive indices are claimed [chunk] at a
   time — dynamic scheduling with a per-chunk handoff — and results are
   gathered positionally, so the output array never depends on which
   domain ran which chunk.  The jobs must be independent — in particular
   each should own its RNG. *)
let chunk_of ?chunk pool n =
  match chunk with
  | Some c ->
    if c < 1 then invalid_arg "Parallel.map: chunk must be >= 1";
    c
  | None ->
    (* ~4 chunks per domain: enough slack for dynamic load balancing
       without paying a handoff per index. *)
    max 1 (n / (pool.domains * 4))

let map ?pool ?chunk n f =
  if n < 0 then invalid_arg "Parallel.map: negative count";
  let pool = match pool with Some p -> p | None -> default_pool () in
  if n = 0 then [||]
  else if pool.domains = 1 then Array.init n f
  else begin
    let chunk = chunk_of ?chunk pool n in
    let tasks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    run_batch pool
      (fun t ->
        let hi = min n ((t + 1) * chunk) in
        for i = t * chunk to hi - 1 do
          results.(i) <- Some (f i)
        done)
      tasks;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce ?pool ?chunk n ~map:f ~combine ~init =
  Array.fold_left combine init (map ?pool ?chunk n f)

let default_min_bytes = 1 lsl 20

let run_striped pool ~len apply =
  let parts = stripe_count pool ~len in
  if parts <= 1 then apply ~pos:0 ~len
  else begin
    let bounds = stripe_bounds ~len ~parts in
    run_batch pool
      (fun i ->
        let pos = bounds.(i) in
        let slice = bounds.(i + 1) - pos in
        if slice > 0 then apply ~pos ~len:slice)
      parts
  end

let encode ?pool ?(min_bytes = default_min_bytes) codec data =
  let open Codec_core in
  if h codec = 0 then [||]
  else begin
    let parity, len = encode_prepare codec data in
    let pool = match pool with Some p -> p | None -> default_pool () in
    if pool.domains = 1 || k codec * h codec * len < min_bytes then
      encode_into codec data ~parity ~pos:0 ~len
    else run_striped pool ~len (fun ~pos ~len -> encode_into codec data ~parity ~pos ~len);
    parity
  end

let decode ?pool ?(min_bytes = default_min_bytes) codec received =
  let open Codec_core in
  let plan = decode_plan codec received in
  let missing = plan_missing_count plan in
  if missing > 0 then begin
    let len = plan_payload_len plan in
    let pool = match pool with Some p -> p | None -> default_pool () in
    if pool.domains = 1 || k codec * missing * len < min_bytes then
      decode_accumulate codec plan ~pos:0 ~len
    else run_striped pool ~len (fun ~pos ~len -> decode_accumulate codec plan ~pos ~len)
  end;
  plan_outputs plan
