(* Multicore FEC datapath: shard encode/decode byte work across OCaml 5
   domains by packet stripe.  Each worker owns a disjoint byte range of
   every packet involved, so stripes share nothing but immutable coefficient
   rows and the (read-only) source payloads; stripe boundaries are aligned
   to cache lines to keep writers off each other's lines.

   The pool keeps its worker domains alive across calls: batches are
   published under a mutex and claimed stripe-by-stripe, with the caller
   participating as the (n+1)-th worker so a pool of [domains = d] uses
   exactly d cores.  Small payloads never reach the pool — below
   [min_bytes] of kernel work the sequential blocked path is faster than
   the wake-up, so we fall back to it (and always when the pool has a
   single domain, e.g. when [Domain.recommended_domain_count () = 1]). *)

module Gf = Rmc_gf.Gf

type pool = {
  domains : int; (* total parallelism including the calling domain *)
  batch_lock : Mutex.t; (* serialises whole batches: one striped call at a time *)
  mutex : Mutex.t;
  work : Condition.t; (* signalled when a batch is published *)
  finished : Condition.t; (* signalled when the last stripe completes *)
  mutable job : (int -> unit) option; (* the current batch, applied per stripe *)
  mutable next : int; (* next unclaimed stripe *)
  mutable total : int; (* stripes in the current batch *)
  mutable completed : int;
  mutable error : exn option; (* first stripe failure, re-raised by the caller *)
}

let domain_count pool = pool.domains

let finish_stripe pool outcome =
  Mutex.lock pool.mutex;
  (match outcome with
  | Ok () -> ()
  | Error e -> if pool.error = None then pool.error <- Some e);
  pool.completed <- pool.completed + 1;
  if pool.completed >= pool.total then Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let run_stripe pool job i =
  finish_stripe pool (match job i with () -> Ok () | exception e -> Error e)

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while match pool.job with None -> true | Some _ -> pool.next >= pool.total do
    Condition.wait pool.work pool.mutex
  done;
  let job = Option.get pool.job in
  let i = pool.next in
  pool.next <- pool.next + 1;
  Mutex.unlock pool.mutex;
  run_stripe pool job i;
  worker_loop pool

let create_pool ?domains () =
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let domains = max 1 requested in
  let pool =
    {
      domains;
      batch_lock = Mutex.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      next = 0;
      total = 0;
      completed = 0;
      error = None;
    }
  in
  (* Workers never terminate; the OCaml runtime tears blocked domains down
     with the process, so an idle pool costs one parked thread per domain
     and nothing else. *)
  for _ = 2 to domains do
    ignore (Domain.spawn (fun () -> worker_loop pool) : unit Domain.t)
  done;
  pool

let default = lazy (create_pool ())
let default_pool () = Lazy.force default

(* Run [job] for every stripe index in [0, total), the caller claiming
   stripes alongside the workers, and return once all stripes finished. *)
let run_batch pool job total =
  if total = 1 then job 0
  else if total > 0 then begin
    Mutex.lock pool.batch_lock;
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.next <- 0;
    pool.total <- total;
    pool.completed <- 0;
    pool.error <- None;
    Condition.broadcast pool.work;
    let running = ref true in
    while !running do
      if pool.next < pool.total then begin
        let i = pool.next in
        pool.next <- pool.next + 1;
        Mutex.unlock pool.mutex;
        run_stripe pool job i;
        Mutex.lock pool.mutex
      end
      else if pool.completed < pool.total then Condition.wait pool.finished pool.mutex
      else running := false
    done;
    pool.job <- None;
    let error = pool.error in
    pool.error <- None;
    Mutex.unlock pool.mutex;
    Mutex.unlock pool.batch_lock;
    match error with Some e -> raise e | None -> ()
  end

(* Stripe boundaries: [parts] ranges covering [0, len), every boundary a
   multiple of 64 bytes (cache-line aligned, and even for 16-bit symbols). *)
let stripe_bounds ~len ~parts =
  let align = 64 in
  let stripe = ((len + parts - 1) / parts + align - 1) / align * align in
  Array.init (parts + 1) (fun i -> min len (i * stripe))

let stripe_count pool ~len =
  let align = 64 in
  min pool.domains ((len + align - 1) / align)

(* Task-level sharding for coarse independent jobs (simulation reps, TG
   batches): one pool slot per index, results gathered positionally.  The
   jobs must be independent — in particular each should own its RNG. *)
let map ?pool n f =
  if n < 0 then invalid_arg "Parallel.map: negative count";
  let pool = match pool with Some p -> p | None -> default_pool () in
  if n = 0 then [||]
  else if pool.domains = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run_batch pool (fun i -> results.(i) <- Some (f i)) n;
    Array.map (function Some v -> v | None -> assert false) results
  end

let default_min_bytes = 1 lsl 20

let run_striped pool ~len apply =
  let parts = stripe_count pool ~len in
  if parts <= 1 then apply ~pos:0 ~len
  else begin
    let bounds = stripe_bounds ~len ~parts in
    run_batch pool
      (fun i ->
        let pos = bounds.(i) in
        let slice = bounds.(i + 1) - pos in
        if slice > 0 then apply ~pos ~len:slice)
      parts
  end

let encode ?pool ?(min_bytes = default_min_bytes) codec data =
  let open Codec_core in
  if h codec = 0 then [||]
  else begin
    let parity, len = encode_prepare codec data in
    let pool = match pool with Some p -> p | None -> default_pool () in
    if pool.domains = 1 || k codec * h codec * len < min_bytes then
      encode_into codec data ~parity ~pos:0 ~len
    else run_striped pool ~len (fun ~pos ~len -> encode_into codec data ~parity ~pos ~len);
    parity
  end

let decode ?pool ?(min_bytes = default_min_bytes) codec received =
  let open Codec_core in
  let plan = decode_plan codec received in
  let missing = plan_missing_count plan in
  if missing > 0 then begin
    let len = plan_payload_len plan in
    let pool = match pool with Some p -> p | None -> default_pool () in
    if pool.domains = 1 || k codec * missing * len < min_bytes then
      decode_accumulate codec plan ~pos:0 ~len
    else run_striped pool ~len (fun ~pos ~len -> decode_accumulate codec plan ~pos ~len)
  end;
  plan_outputs plan
