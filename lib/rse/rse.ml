module Gf = Rmc_gf.Gf
module Gmatrix = Rmc_matrix.Gmatrix

type t = Codec_core.t

let create ?(field = Gf.gf256) ~k ~h () =
  Codec_core.memo_create ~label:"Rse" ~field ~k ~h (fun () ->
      Codec_core.check_dimensions ~label:"Rse" ~field ~k ~h;
      let vandermonde = Gmatrix.vandermonde field ~rows:(k + h) ~cols:k in
      let generator = Gmatrix.systematise vandermonde in
      Codec_core.make ~label:"Rse" ~field ~k ~h ~generator)

let k = Codec_core.k
let h = Codec_core.h
let n = Codec_core.n
let field = Codec_core.field
let generator_row = Codec_core.generator_row
let encode_parity = Codec_core.encode_parity
let encode = Codec_core.encode
let decode = Codec_core.decode
let decode_data_loss = Codec_core.decode_data_loss
let is_mds_subset = Codec_core.is_mds_subset
let encode_parallel = Parallel.encode
let decode_parallel = Parallel.decode

module Codec = Codec_core.Block_codec (struct
  let kind = `Rse
  let label = "Rse"
  let create ~k ~h = create ~k ~h ()
end)
