(* FEC-block bookkeeping over the codec seam.  This module owns the
   protocol-facing state of one transmission group — which repair
   packets the sender has issued, how far along the receiver is — while
   the codec itself stays behind [Codec_intf]: [create] unpacks the
   first-class codec module once and stores plain closures over the
   typed encoder/decoder, so no existential types leak and everything
   above this line is codec-agnostic. *)

module Sender = struct
  type t = {
    k : int;
    h : int;
    data : Bytes.t array;
    repair : int -> Bytes.t;
    cache : Bytes.t option array; (* repair j once encoded *)
    mutable issued : int; (* next unissued repair index *)
  }

  let create ~codec ~h data =
    let (module C : Codec_intf.CODEC) = codec in
    let k = Array.length data in
    let enc = C.Encoder.create ~k ~h data in
    {
      k;
      h;
      data;
      repair = (fun j -> C.Encoder.repair enc j);
      cache = Array.make h None;
      issued = 0;
    }

  let k t = t.k
  let h t = t.h
  let data t = t.data

  let parity t j =
    if j < 0 || j >= t.h then invalid_arg "Fec_block.Sender.parity: index out of range";
    match t.cache.(j) with
    | Some payload -> payload
    | None ->
      let payload = t.repair j in
      t.cache.(j) <- Some payload;
      payload

  let parities_issued t = t.issued

  let next_parities t l =
    if l < 0 then invalid_arg "Fec_block.Sender.next_parities: negative count";
    if t.issued + l > t.h then
      failwith "Fec_block.Sender.next_parities: parity budget exhausted";
    let out =
      List.init l (fun offset ->
          let j = t.issued + offset in
          (j, parity t j))
    in
    t.issued <- t.issued + l;
    out

  let precompute t =
    for j = 0 to t.h - 1 do
      ignore (parity t j)
    done
end

module Receiver = struct
  (* The decoder operations, captured as closures over the typed decoder
     the packed codec module built. *)
  type t = {
    k : int;
    h : int;
    add_ : index:int -> Bytes.t -> bool;
    received_ : unit -> int;
    needed_ : unit -> int;
    complete_ : unit -> bool;
    has_data_ : int -> bool;
    missing_data_ : unit -> int list;
    decode_ : unit -> Bytes.t array;
  }

  let create ~codec ~k ~h =
    let (module C : Codec_intf.CODEC) = codec in
    let d = C.Decoder.create ~k ~h in
    {
      k;
      h;
      add_ = (fun ~index payload -> C.Decoder.add d ~index payload);
      received_ = (fun () -> C.Decoder.received d);
      needed_ = (fun () -> C.Decoder.needed d);
      complete_ = (fun () -> C.Decoder.complete d);
      has_data_ = (fun index -> C.Decoder.has_data d index);
      missing_data_ = (fun () -> C.Decoder.missing_data d);
      decode_ = (fun () -> C.Decoder.decode d);
    }

  let k t = t.k
  let h t = t.h

  let add t ~index payload =
    if index < 0 || index >= t.k + t.h then
      invalid_arg "Fec_block.Receiver.add: index out of range";
    t.add_ ~index payload

  let received t = t.received_ ()
  let needed t = t.needed_ ()
  let complete t = t.complete_ ()
  let has_data t index = t.has_data_ index
  let missing_data t = t.missing_data_ ()

  let decode t =
    if not (complete t) then failwith "Fec_block.Receiver.decode: not enough packets";
    t.decode_ ()
end
