module Gf = Rmc_gf.Gf

let kind = `Lt
let label = "Lt"
let caps = { Codec_intf.systematic = true; rateless = true }
let max_repair ~k = 0xFFFF - k

let check_block ~k ~h =
  if k < 1 then invalid_arg (label ^ ".create: k must be >= 1");
  if h < 0 then invalid_arg (label ^ ".create: h must be >= 0");
  if h > max_repair ~k then
    invalid_arg (label ^ ".create: k + h exceeds the 16-bit wire index space")

(* {1 Robust soliton degree distribution}

   Luby's distribution mu(d) proportional to rho(d) + tau(d) with the
   standard parameters c = 0.1, delta = 0.05: the ideal soliton rho
   keeps the expected ripple releasing one packet per reception, the
   tau spike at d* ~ k/R guards against the ripple dying out. *)

let soliton_c = 0.1
let soliton_delta = 0.05

type dist = { cdf : float array (* cdf.(d-1) = P(degree <= d), d = 1..k *) }

let make_dist k =
  let kf = float_of_int k in
  let r = max 1.0 (soliton_c *. log (kf /. soliton_delta) *. sqrt kf) in
  let spike = min k (max 1 (int_of_float (Float.round (kf /. r)))) in
  let weight d =
    let df = float_of_int d in
    let rho = if d = 1 then 1.0 /. kf else 1.0 /. (df *. (df -. 1.0)) in
    let tau =
      if d < spike then r /. (df *. kf)
      else if d = spike then r *. log (r /. soliton_delta) /. kf
      else 0.0
    in
    rho +. tau
  in
  let cdf = Array.make k 0.0 in
  let total = ref 0.0 in
  for d = 1 to k do
    total := !total +. weight d;
    cdf.(d - 1) <- !total
  done;
  let total = !total in
  Array.iteri (fun i v -> cdf.(i) <- v /. total) cdf;
  { cdf }

let sample_degree dist prng =
  let u = Codec_prng.unit_float prng in
  let cdf = dist.cdf in
  let n = Array.length cdf in
  (* First index with cdf >= u; binary search over the monotone array. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

(* The neighbor set of repair packet [j]: degree from the robust soliton,
   then that many distinct data indices by partial Fisher-Yates — all
   from the (k, j)-seeded stream, so the decoder re-derives it from the
   wire index alone. *)
let neighbors_dist dist ~k ~j =
  let prng = Codec_prng.of_block ~k ~j ~salt:0 in
  let degree = sample_degree dist prng in
  let pool = Array.init k Fun.id in
  let chosen = ref [] in
  for i = 0 to degree - 1 do
    let pick = i + Codec_prng.below prng (k - i) in
    let v = pool.(pick) in
    pool.(pick) <- pool.(i);
    pool.(i) <- v;
    chosen := v :: !chosen
  done;
  !chosen

let neighbors ~k ~j = neighbors_dist (make_dist k) ~k ~j

(* Model hooks: the binary-matrix proxy (an LT packet is a GF(2)
   combination).  Optimistic for the peeling decoder, which can stall
   above the rank bound — the differential experiment measures the real
   overhead; these keep the abstract tier and the analysis layer
   closed-form. *)
let innovation_probability ~k ~rank =
  if rank >= k then 0.0 else 1.0 -. (2.0 ** float_of_int (rank - k))

let decode_failure_probability ~k ~received =
  if received < k then 1.0
  else begin
    let p_full = ref 1.0 in
    for i = 0 to k - 1 do
      p_full := !p_full *. (1.0 -. (2.0 ** float_of_int (i - received)))
    done;
    1.0 -. !p_full
  end

module Encoder = struct
  type t = { k : int; h : int; data : Bytes.t array; payload_len : int; dist : dist }

  let create ~k ~h data =
    check_block ~k ~h;
    if Array.length data <> k then
      invalid_arg (label ^ ".Encoder.create: expected k data packets");
    let payload_len = Bytes.length data.(0) in
    Array.iter
      (fun p ->
        if Bytes.length p <> payload_len then
          invalid_arg (label ^ ".Encoder.create: unequal packet lengths"))
      data;
    { k; h; data; payload_len; dist = make_dist k }

  let k e = e.k
  let h e = e.h

  let repair e j =
    if j < 0 || j >= e.h then invalid_arg (label ^ ".Encoder.repair: index out of range");
    match neighbors_dist e.dist ~k:e.k ~j with
    | [] -> assert false (* degree >= 1 by construction *)
    | first :: rest ->
      let out = Bytes.copy e.data.(first) in
      List.iter (fun i -> Gf.xor_into ~dst:out ~src:e.data.(i)) rest;
      out
end

module Decoder = struct
  (* Peeling decoder.  A coded packet whose unrecovered-neighbor list
     drops to one releases that data packet; each release ripples through
     the waiting lists of packets that reference it. *)
  type coded = { mutable neighbors : int list; payload : Bytes.t }

  type t = {
    k : int;
    h : int;
    dist : dist;
    data : Bytes.t option array; (* recovered value per data index *)
    direct : bool array; (* received verbatim (vs peeled) *)
    waiting : coded list array; (* per data index: coded packets naming it *)
    mutable recovered : int;
    mutable accepted : int;
    mutable payload_len : int; (* -1 until the first add *)
  }

  let create ~k ~h =
    check_block ~k ~h;
    {
      k;
      h;
      dist = make_dist k;
      data = Array.make k None;
      direct = Array.make k false;
      waiting = Array.make k [];
      recovered = 0;
      accepted = 0;
      payload_len = -1;
    }

  let received d = d.accepted
  let needed d = d.k - d.recovered
  let complete d = d.recovered >= d.k

  let has_data d index =
    if index < 0 || index >= d.k then
      invalid_arg (label ^ ".Decoder.has_data: index out of range");
    d.direct.(index)

  let missing_data d = List.filter (fun j -> not d.direct.(j)) (List.init d.k Fun.id)

  (* Install [index := value] and ripple.  A coded packet reaching degree
     one has its neighbor list cleared {e before} its payload is queued as
     the recovered value — it sits in the waiting list of that very index,
     and without the clear (and the [List.mem] guard) the ripple would XOR
     the recovered data into its own buffer, zeroing it. *)
  let recover d index value =
    let pending = Queue.create () in
    Queue.add (index, value) pending;
    while not (Queue.is_empty pending) do
      let l, y = Queue.pop pending in
      if d.data.(l) = None then begin
        d.data.(l) <- Some y;
        d.recovered <- d.recovered + 1;
        let waiters = d.waiting.(l) in
        d.waiting.(l) <- [];
        List.iter
          (fun coded ->
            if List.mem l coded.neighbors then begin
              coded.neighbors <- List.filter (fun i -> i <> l) coded.neighbors;
              Gf.xor_into ~dst:coded.payload ~src:y;
              match coded.neighbors with
              | [ last ] ->
                coded.neighbors <- [];
                if d.data.(last) = None then Queue.add (last, coded.payload) pending
              | _ -> ()
            end)
          waiters
      end
    done

  let add d ~index payload =
    if index < 0 || index >= d.k + d.h then
      invalid_arg (label ^ ".Decoder.add: index out of range");
    if d.payload_len < 0 then d.payload_len <- Bytes.length payload
    else if Bytes.length payload <> d.payload_len then
      invalid_arg (label ^ ".Decoder.add: unequal payload lengths");
    if index < d.k then begin
      let fresh = d.data.(index) = None in
      d.direct.(index) <- true;
      if fresh then begin
        d.accepted <- d.accepted + 1;
        recover d index payload;
        true
      end
      else false (* duplicate, or already peeled from coded packets *)
    end
    else begin
      let ns = neighbors_dist d.dist ~k:d.k ~j:(index - d.k) in
      let remaining = List.filter (fun i -> d.data.(i) = None) ns in
      match remaining with
      | [] -> false (* every neighbor already known: nothing new *)
      | _ ->
        (* Copy, then reduce against the already-recovered neighbors. *)
        let y = Bytes.copy payload in
        List.iter
          (fun i ->
            match d.data.(i) with
            | Some v -> Gf.xor_into ~dst:y ~src:v
            | None -> ())
          ns;
        d.accepted <- d.accepted + 1;
        (match remaining with
        | [ last ] -> recover d last y (* the packet is the missing value *)
        | _ ->
          let coded = { neighbors = remaining; payload = y } in
          List.iter (fun i -> d.waiting.(i) <- coded :: d.waiting.(i)) remaining);
        true
    end

  let decode d =
    if not (complete d) then failwith (label ^ ".Decoder.decode: not enough packets");
    Array.init d.k (fun i -> Option.get d.data.(i))
end
