module Gf = Rmc_gf.Gf
module Gmatrix = Rmc_matrix.Gmatrix

type t = Codec_core.t

let create ?(field = Gf.gf256) ~k ~h () =
  Codec_core.memo_create ~label:"Rse_poly" ~field ~k ~h (fun () ->
      Codec_core.check_dimensions ~label:"Rse_poly" ~field ~k ~h;
      let generator = Gmatrix.create field ~rows:(k + h) ~cols:k in
      for i = 0 to k - 1 do
        Gmatrix.set generator i i 1
      done;
      (* Parity row j evaluates F at alpha^j: entry (k+j, c) = alpha^(j*c). *)
      for j = 0 to h - 1 do
        for c = 0 to k - 1 do
          Gmatrix.set generator (k + j) c (Gf.exp field (j * c))
        done
      done;
      Codec_core.make ~label:"Rse_poly" ~field ~k ~h ~generator)

let k = Codec_core.k
let h = Codec_core.h
let n = Codec_core.n

let encode_parity (t : t) data j =
  if Array.length data <> k t then
    invalid_arg "Rse_poly.encode_parity: expected k data packets";
  if j < 0 || j >= h t then
    invalid_arg "Rse_poly.encode_parity: parity index out of range";
  let len = Bytes.length data.(0) in
  Array.iter
    (fun p ->
      if Bytes.length p <> len then invalid_arg "Rse_poly.encode_parity: unequal lengths")
    data;
  let field = Codec_core.field t in
  if Gf.m field <> 8 then Codec_core.encode_parity t data j
  else begin
    (* Horner evaluation at x = alpha^j across whole packets:
       acc <- acc * x + d_c, from the highest coefficient down.  Equivalent
       to the generator row but exercises the paper's eq. (1) directly. *)
    let x = Gf.exp field j in
    let acc = Bytes.make len '\000' in
    for c = k t - 1 downto 0 do
      if x <> 1 then Gf.mul_into field ~dst:acc ~src:acc ~coeff:x;
      Gf.xor_into ~dst:acc ~src:data.(c)
    done;
    acc
  end

let encode t data = Array.init (h t) (fun j -> encode_parity t data j)
let decode = Codec_core.decode

let mds_violations t =
  let total = n t in
  let violations = ref [] in
  let subset = Array.make (k t) 0 in
  let rec choose slot lowest =
    if slot = k t then begin
      if not (Codec_core.is_mds_subset t subset) then violations := Array.copy subset :: !violations
    end
    else
      for candidate = lowest to total - (k t - slot) do
        subset.(slot) <- candidate;
        choose (slot + 1) (candidate + 1)
      done
  in
  choose 0 0;
  List.rev !violations

(* Kind [`Rse]: the seam's kind names the wire-semantics family, and this
   construction is the ablation partner of Rse, not separately
   wire-selectable. *)
module Codec = Codec_core.Block_codec (struct
  let kind = `Rse
  let label = "Rse_poly"
  let create ~k ~h = create ~k ~h ()
end)
