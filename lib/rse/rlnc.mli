(** Random linear network codec (dense RLNC over GF(2^8)).

    Repair packet [j] of a [k]-block is a dense random combination of
    the data packets: [k] uniform GF(256) coefficients re-derived by
    both sides from a splitmix64 stream seeded by [(k, j)] — the wire
    carries only the packet index, exactly like the block codecs.
    Rateless: the repair budget is bounded by the 16-bit wire index
    space, not by a codeword length, so [k + h] may far exceed 255.

    The decoder runs incremental Gaussian elimination with rank
    tracking: each arriving packet either becomes a new pivot
    ([add] returns [true]) or is linearly dependent and rejected.  Any
    [k] {e innovative} packets decode; the probability that [n] random
    repair packets fail to reach full rank is Tsimbalo et al.'s
    rank-deficiency form [1 - prod_{i=0}^{k-1} (1 - q^(i-n))], exposed
    as {!decode_failure_probability} and validated empirically in the
    test suite.  Per-packet cost is O(k^2 + k P) — the price of
    ratelessness over the O(l k P) planned RSE decode.

    Unlike the MDS block codecs this code is {e probabilistically} MDS:
    a repair packet is non-innovative with probability about [q^(rank-k)]
    ({!innovation_probability}), which the coded-repair simulation tier
    draws against instead of moving bytes. *)

include Codec_intf.CODEC

val coefficients : k:int -> j:int -> int array
(** The coefficient vector of repair packet [j] over a [k]-block —
    the deterministic derivation both encoder and decoder use.  Never
    all-zero (such draws are re-salted).  Exposed for tests and for the
    rank-deficiency experiment. *)
