module Rng = Rmc_numerics.Rng
module Loss = Rmc_sim.Loss

type drop =
  | No_drop
  | Drop_bernoulli of float
  | Drop_burst of { p : float; mean_burst : float; rate : float }

type spec = {
  drop : drop;
  duplicate : float;
  reorder : float;
  delay : (float * float) option;
  corrupt : float;
  seed : int;
}

let none =
  { drop = No_drop; duplicate = 0.0; reorder = 0.0; delay = None; corrupt = 0.0; seed = 0 }

let validate_spec spec =
  let probability what p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault: %s probability %g outside [0, 1]" what p)
  in
  (match spec.drop with
  | No_drop -> ()
  | Drop_bernoulli p ->
    if p < 0.0 || p >= 1.0 then invalid_arg "Fault: drop probability outside [0, 1)"
  | Drop_burst { p; mean_burst; rate } ->
    if p <= 0.0 || p >= 1.0 then invalid_arg "Fault: burst drop probability outside (0, 1)";
    if mean_burst <= 1.0 then invalid_arg "Fault: mean burst must exceed 1 datagram";
    if rate <= 0.0 then invalid_arg "Fault: burst rate must be positive");
  probability "duplicate" spec.duplicate;
  probability "reorder" spec.reorder;
  probability "corrupt" spec.corrupt;
  match spec.delay with
  | None -> ()
  | Some (lo, hi) ->
    if lo < 0.0 || hi < lo then invalid_arg "Fault: delay range must satisfy 0 <= min <= max"

(* --- textual specs ---------------------------------------------------- *)

let spec_to_string spec =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  (match spec.drop with
  | No_drop -> ()
  | Drop_bernoulli p -> add "drop=%g" p
  | Drop_burst { p; mean_burst; rate } -> add "drop=burst:%g:%g:%g" p mean_burst rate);
  if spec.duplicate > 0.0 then add "dup=%g" spec.duplicate;
  if spec.reorder > 0.0 then add "reorder=%g" spec.reorder;
  (match spec.delay with
  | Some (lo, hi) -> add "delay=%g:%g" lo hi
  | None -> ());
  if spec.corrupt > 0.0 then add "corrupt=%g" spec.corrupt;
  add "seed=%d" spec.seed;
  String.concat "," (List.rev !parts)

let spec_of_string s =
  let ( let* ) r f = Result.bind r f in
  let float_field key v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: not a number: %S" key v)
  in
  let probability key v =
    let* f = float_field key v in
    if f < 0.0 || f > 1.0 then Error (Printf.sprintf "%s: %g outside [0, 1]" key f)
    else Ok f
  in
  let parse_drop v =
    match String.split_on_char ':' v with
    | [ p ] ->
      let* p = probability "drop" p in
      Ok (if p = 0.0 then No_drop else Drop_bernoulli p)
    | [ "burst"; p; mean_burst; rate ] ->
      let* p = probability "drop" p in
      let* mean_burst = float_field "drop burst length" mean_burst in
      let* rate = float_field "drop burst rate" rate in
      Ok (Drop_burst { p; mean_burst; rate })
    | _ -> Error (Printf.sprintf "drop: expected P or burst:P:LEN:RATE, got %S" v)
  in
  let parse_delay v =
    match String.split_on_char ':' v with
    | [ d ] ->
      let* d = float_field "delay" d in
      Ok (Some (d, d))
    | [ lo; hi ] ->
      let* lo = float_field "delay min" lo in
      let* hi = float_field "delay max" hi in
      Ok (Some (lo, hi))
    | _ -> Error (Printf.sprintf "delay: expected D or MIN:MAX, got %S" v)
  in
  let field spec segment =
    match String.index_opt segment '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" segment)
    | Some i ->
      let key = String.sub segment 0 i in
      let v = String.sub segment (i + 1) (String.length segment - i - 1) in
      (match key with
      | "drop" ->
        let* drop = parse_drop v in
        Ok { spec with drop }
      | "dup" | "duplicate" ->
        let* duplicate = probability key v in
        Ok { spec with duplicate }
      | "reorder" ->
        let* reorder = probability key v in
        Ok { spec with reorder }
      | "delay" ->
        let* delay = parse_delay v in
        Ok { spec with delay }
      | "corrupt" ->
        let* corrupt = probability key v in
        Ok { spec with corrupt }
      | "seed" ->
        (match int_of_string_opt v with
        | Some seed -> Ok { spec with seed }
        | None -> Error (Printf.sprintf "seed: not an integer: %S" v))
      | other -> Error (Printf.sprintf "unknown fault key %S" other))
  in
  let segments =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun seg -> seg <> "")
  in
  let* spec = List.fold_left (fun acc seg -> Result.bind acc (fun sp -> field sp seg)) (Ok none) segments in
  match validate_spec spec with
  | () -> Ok spec
  | exception Invalid_argument msg -> Error msg

(* --- the shim ---------------------------------------------------------- *)

type t = {
  spec : spec;
  rng : Rng.t;
  loss : Loss.t option;
  trace : Trace.t option;
  metrics : Metrics.t;
  c_injected : Metrics.counter;
  c_dropped : Metrics.counter;
  c_duplicated : Metrics.counter;
  c_reordered : Metrics.counter;
  c_delayed : Metrics.counter;
  c_corrupted : Metrics.counter;
  c_corrupt_copies : Metrics.counter;
  c_delivered : Metrics.counter;
  mutable last_now : float;
  mutable held : (Bytes.t * bool) option;  (* packet, is-a-corrupt-copy *)
  mutable held_gen : int;
}

let hold_flush_after = 0.030

let create ?metrics ?trace spec =
  validate_spec spec;
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let rng = Rng.create ~seed:spec.seed () in
  let loss =
    match spec.drop with
    | No_drop -> None
    | Drop_bernoulli p -> Some (Loss.bernoulli (Rng.split rng) ~p)
    | Drop_burst { p; mean_burst; rate } ->
      Some (Loss.markov2 (Rng.split rng) ~p ~mean_burst ~send_rate:rate)
  in
  {
    spec;
    rng;
    loss;
    trace;
    metrics;
    c_injected = Metrics.counter metrics "fault.injected";
    c_dropped = Metrics.counter metrics "fault.dropped";
    c_duplicated = Metrics.counter metrics "fault.duplicated";
    c_reordered = Metrics.counter metrics "fault.reordered";
    c_delayed = Metrics.counter metrics "fault.delayed";
    c_corrupted = Metrics.counter metrics "fault.corrupted";
    c_corrupt_copies = Metrics.counter metrics "fault.corrupt_copies";
    c_delivered = Metrics.counter metrics "fault.delivered";
    last_now = neg_infinity;
    held = None;
    held_gen = 0;
  }

let spec t = t.spec

let note t ~now name =
  match t.trace with None -> () | Some trace -> Trace.record trace ~virt:now name

let corrupt_copy t packet =
  let pkt = Bytes.copy packet in
  let flips = 1 + Rng.int t.rng 3 in
  for _ = 1 to flips do
    let pos = Rng.int t.rng (Bytes.length pkt) in
    Bytes.set_uint8 pkt pos (Bytes.get_uint8 pkt pos lxor (1 + Rng.int t.rng 255))
  done;
  pkt

let emit t ~send ~corrupted packet =
  Metrics.incr t.c_delivered;
  if corrupted then Metrics.incr t.c_corrupt_copies;
  send packet

let deliver t ~defer ~send ~corrupted packet =
  match t.spec.delay with
  | Some (lo, hi) when hi > 0.0 ->
    Metrics.incr t.c_delayed;
    let d = lo +. (Rng.float t.rng *. (hi -. lo)) in
    defer d (fun () -> emit t ~send ~corrupted packet)
  | Some _ | None -> emit t ~send ~corrupted packet

let release_held t ~defer ~send =
  match t.held with
  | None -> ()
  | Some (packet, corrupted) ->
    t.held <- None;
    t.held_gen <- t.held_gen + 1;
    deliver t ~defer ~send ~corrupted packet

let hold t ~defer ~send ~corrupted packet =
  t.held <- Some (packet, corrupted);
  t.held_gen <- t.held_gen + 1;
  let gen = t.held_gen in
  (* If nothing ever overtakes it, flush so the datagram is late, not lost. *)
  defer hold_flush_after (fun () -> if t.held_gen = gen then release_held t ~defer ~send)

let apply t ~now ~defer ~send packet =
  Metrics.incr t.c_injected;
  (* Wall clocks can step backwards; the loss process cannot. *)
  t.last_now <- Float.max t.last_now now;
  let dropped = match t.loss with Some l -> Loss.lost l t.last_now | None -> false in
  if dropped then begin
    Metrics.incr t.c_dropped;
    note t ~now "fault.drop"
  end
  else begin
    let packet, corrupted =
      if t.spec.corrupt > 0.0 && Bytes.length packet > 0
         && Rng.bernoulli t.rng t.spec.corrupt
      then begin
        Metrics.incr t.c_corrupted;
        note t ~now "fault.corrupt";
        (corrupt_copy t packet, true)
      end
      else (packet, false)
    in
    let dup = t.spec.duplicate > 0.0 && Rng.bernoulli t.rng t.spec.duplicate in
    if dup then begin
      Metrics.incr t.c_duplicated;
      note t ~now "fault.duplicate"
    end;
    let want_hold =
      t.spec.reorder > 0.0 && t.held = None && Rng.bernoulli t.rng t.spec.reorder
    in
    if want_hold && not dup then begin
      Metrics.incr t.c_reordered;
      note t ~now "fault.reorder";
      hold t ~defer ~send ~corrupted packet
    end
    else begin
      deliver t ~defer ~send ~corrupted packet;
      if dup then deliver t ~defer ~send ~corrupted packet;
      release_held t ~defer ~send
    end
  end

type stats = {
  injected : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  corrupted : int;
  corrupt_copies : int;
  delivered : int;
}

let stats t =
  {
    injected = Metrics.count t.c_injected;
    dropped = Metrics.count t.c_dropped;
    duplicated = Metrics.count t.c_duplicated;
    reordered = Metrics.count t.c_reordered;
    delayed = Metrics.count t.c_delayed;
    corrupted = Metrics.count t.c_corrupted;
    corrupt_copies = Metrics.count t.c_corrupt_copies;
    delivered = Metrics.count t.c_delivered;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "injected %d, dropped %d, duplicated %d, reordered %d, delayed %d, corrupted %d (%d copies sent), delivered %d"
    s.injected s.dropped s.duplicated s.reordered s.delayed s.corrupted s.corrupt_copies
    s.delivered
