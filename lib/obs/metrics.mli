(** Named monotonic counters and gauges.

    A registry is a flat namespace of metrics identified by dotted names
    ([tx.data], [fault.dropped], [reactor.timer_fires]...).  Handles are
    looked up once and then bumped with a single atomic read-modify-write,
    so instrumented hot paths pay one [Atomic.fetch_and_add] per event —
    no allocation, no hashing.

    The registry is domain-safe: counters and gauges are [Atomic.t]
    cells, so handles may be bumped concurrently from several domains
    (the sharded UDP reactor, {!Rmc_rse.Parallel} jobs) without losing
    updates, and handle creation / listings are serialized internally.
    One registry can therefore be shared across a whole sharded run and
    still report exact totals. *)

type t
(** A metrics registry. *)

type counter
(** Monotonic integer counter. *)

type gauge
(** Last-value-wins float gauge. *)

val create : unit -> t

val scope : t -> string -> t
(** [scope t name] is a view of the same registry that prepends
    ["name."] to every metric it touches: handles, [get]s and listings all
    happen under the prefix, and the underlying tables stay shared, so a
    parent registry still sees (and can aggregate) every scoped metric.
    Scopes nest: [scope (scope t "session") "3"] uses ["session.3."]. *)

val prefix : t -> string
(** The accumulated prefix ([""] for a root registry). *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name], creating
    it at zero on first use.  Subsequent calls with the same name return
    the same handle. *)

val incr : ?by:int -> counter -> unit
(** Bump a counter (default [by] = 1). *)

val count : counter -> int

val get : t -> string -> int
(** Current value of the named counter; 0 if it was never registered. *)

val gauge : t -> string -> gauge
(** Get-or-create, like {!counter}.  Fresh gauges read 0. *)

val set : gauge -> float -> unit
val value : gauge -> float

val get_gauge : t -> string -> float
(** 0 if never registered. *)

val counters : t -> (string * int) list
(** All counters under this view's prefix (all of them for a root
    registry), full names, sorted (deterministic for tests and dumps). *)

val gauges : t -> (string * float) list

val pp : Format.formatter -> t -> unit
(** One [name value] line per metric, counters then gauges, sorted. *)

val to_string : t -> string
