(** Named monotonic counters and gauges.

    A registry is a flat namespace of metrics identified by dotted names
    ([tx.data], [fault.dropped], [reactor.timer_fires]...).  Handles are
    looked up once and then bumped with a single atomic read-modify-write,
    so instrumented hot paths pay one [Atomic.fetch_and_add] per event —
    no allocation, no hashing.

    Counters are {e sharded per domain}: each counter holds a small array
    of padded per-domain slots, {!incr} bumps the calling domain's slot,
    and reads sum the slots.  Several domains (the sharded UDP reactor,
    {!Rmc_rse.Parallel} workers) can therefore bump the same counter
    without ever contending on a cache line, and no increment is lost.

    {2 Consistency contract}

    Each individual counter is {e exact}: every {!incr} lands in exactly
    one slot, so once writers quiesce, {!count}/{!get} return precisely
    the number of increments.  While writers are running, a read is a
    moment-in-time sum of the slots — a valid value the counter passed
    through (reads never observe a partial [by]).

    There is {e no cross-counter consistency}: two counters read one
    after the other (by {!counters}, {!snapshot} or consecutive {!get}s)
    may straddle a concurrent update that touched both — e.g. a dump can
    show [tx.data] already bumped but [tx.bytes] not yet.  Consumers that
    need a coherent multi-counter view must quiesce the writers first
    (as the drivers do at teardown).  {!snapshot} reads each counter's
    shard sum exactly once, so within one snapshot a counter appears a
    single consistent value — but different counters in the same snapshot
    are still taken at slightly different instants. *)

type t
(** A metrics registry. *)

type counter
(** Monotonic integer counter, sharded per domain. *)

type gauge
(** Last-value-wins float gauge (one atomic cell, not sharded). *)

val create : unit -> t

val scope : t -> string -> t
(** [scope t name] is a view of the same registry that prepends
    ["name."] to every metric it touches: handles, [get]s and listings all
    happen under the prefix, and the underlying tables stay shared, so a
    parent registry still sees (and can aggregate) every scoped metric.
    Scopes nest: [scope (scope t "session") "3"] uses ["session.3."]. *)

val prefix : t -> string
(** The accumulated prefix ([""] for a root registry). *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name], creating
    it at zero on first use.  Subsequent calls with the same name return
    the same handle. *)

val incr : ?by:int -> counter -> unit
(** Bump a counter (default [by] = 1): one [fetch_and_add] on the calling
    domain's shard slot.  Never lost, never contended across domains. *)

val count : counter -> int
(** Sum of the counter's shard slots (see the consistency contract). *)

val get : t -> string -> int
(** Current value of the named counter; 0 if it was never registered. *)

val gauge : t -> string -> gauge
(** Get-or-create, like {!counter}.  Fresh gauges read 0. *)

val set : gauge -> float -> unit
val value : gauge -> float

val get_gauge : t -> string -> float
(** 0 if never registered. *)

val counters : t -> (string * int) list
(** All counters under this view's prefix (all of them for a root
    registry), full names, sorted (deterministic for tests and dumps).
    Each value is that counter's shard sum read once. *)

val gauges : t -> (string * float) list

val snapshot : t -> (string * int) list * (string * float) list
(** [(counters t, gauges t)] taken back-to-back: each counter's shards
    are summed exactly once.  Per-counter atomic; not consistent across
    counters (see the consistency contract above). *)

val pp : Format.formatter -> t -> unit
(** One [name value] line per metric, counters then gauges, sorted. *)

val to_string : t -> string
