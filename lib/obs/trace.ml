type event = { wall : float; virt : float option; name : string; detail : string }

type t = {
  ring : event option array;
  clock : unit -> float;
  mutable next : int;  (* slot for the next event *)
  mutable total : int;  (* events ever recorded *)
}

let create ?(capacity = 1024) ?(clock = fun () -> 0.0) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; clock; next = 0; total = 0 }

let record ?virt ?(detail = "") t name =
  t.ring.(t.next) <- Some { wall = t.clock (); virt; name; detail };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let capacity t = Array.length t.ring
let recorded t = t.total
let retained t = min t.total (Array.length t.ring)
let dropped t = t.total - retained t

let events t =
  let n = retained t in
  let cap = Array.length t.ring in
  let start = if t.total <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with Some e -> e | None -> assert false)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

let pp ppf t =
  if dropped t > 0 then
    Format.fprintf ppf "... %d earlier events dropped@." (dropped t);
  List.iter
    (fun e ->
      match e.virt with
      | Some v -> Format.fprintf ppf "%.6f (virt %.6f) %s %s@." e.wall v e.name e.detail
      | None -> Format.fprintf ppf "%.6f %s %s@." e.wall e.name e.detail)
    (events t)
