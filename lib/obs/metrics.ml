(* Counters and gauges are [Atomic.t] cells so instrumented code running
   on several domains (the sharded UDP reactor, [Parallel.map] jobs) never
   loses increments: [incr] is one [fetch_and_add], [set] one atomic
   store.  The registry tables are guarded by a mutex, taken only on
   handle creation and listings — never on the hot bump path. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type t = {
  prefix : string;
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let create () =
  {
    prefix = "";
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
  }

let scope t name = { t with prefix = t.prefix ^ name ^ "." }
let prefix t = t.prefix

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let counter t name =
  let name = t.prefix ^ name in
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.replace t.counters name c;
        c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by : int)
let count c = Atomic.get c.c_value

let get t name =
  match locked t (fun () -> Hashtbl.find_opt t.counters (t.prefix ^ name)) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

let gauge t name =
  let name = t.prefix ^ name in
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_value = Atomic.make 0.0 } in
        Hashtbl.replace t.gauges name g;
        g)

let set g v = Atomic.set g.g_value v
let value g = Atomic.get g.g_value

let get_gauge t name =
  match locked t (fun () -> Hashtbl.find_opt t.gauges (t.prefix ^ name)) with
  | Some g -> Atomic.get g.g_value
  | None -> 0.0

let in_scope t name = String.starts_with ~prefix:t.prefix name

let counters t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ c acc ->
          if in_scope t c.c_name then (c.c_name, Atomic.get c.c_value) :: acc else acc)
        t.counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ g acc ->
          if in_scope t g.g_name then (g.g_name, Atomic.get g.g_value) :: acc else acc)
        t.gauges [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %d@." name v) (counters t);
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %g@." name v) (gauges t)

let to_string t = Format.asprintf "%a" pp t
