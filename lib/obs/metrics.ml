(* Counters are sharded per domain so instrumented hot paths never
   contend: [incr] bumps the shard slot indexed by the calling domain's
   id, one [fetch_and_add] on a cache line no other domain is writing.
   Reads sum the slots — each counter is exact (every increment lands in
   exactly one slot) but a read concurrent with writers is a moment-in-
   time sum, and two counters read one after the other may straddle an
   update (per-counter atomicity, not cross-counter consistency; see the
   .mli).  Gauges are last-value-wins, one atomic cell.  The registry
   tables are guarded by a mutex, taken only on handle creation and
   listings — never on the hot bump path. *)

(* Enough slots to separate the domains we actually run (reactor shards,
   Parallel workers), capped so listing stays cheap.  At least 4, so the
   multi-slot paths are exercised even on single-core hosts. *)
let slot_count =
  let domains = Domain.recommended_domain_count () in
  let rec up n = if n >= domains || n >= 16 then n else up (n * 2) in
  up 4

let slot_mask = slot_count - 1

(* The pad keeps consecutively-allocated slots off each other's cache
   lines (minor-heap allocation is sequential), so two domains bumping
   neighbouring slots don't false-share. *)
type slot = { value : int Atomic.t; _pad : Bytes.t }

let make_slot () = { value = Atomic.make 0; _pad = Bytes.create 48 }

type counter = { c_name : string; c_slots : slot array }
type gauge = { g_name : string; g_value : float Atomic.t }

type t = {
  prefix : string;
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let create () =
  {
    prefix = "";
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
  }

let scope t name = { t with prefix = t.prefix ^ name ^ "." }
let prefix t = t.prefix

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let counter t name =
  let name = t.prefix ^ name in
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_slots = Array.init slot_count (fun _ -> make_slot ()) } in
        Hashtbl.replace t.counters name c;
        c)

let incr ?(by = 1) c =
  let slot = (Domain.self () :> int) land slot_mask in
  ignore (Atomic.fetch_and_add c.c_slots.(slot).value by : int)

let count c = Array.fold_left (fun acc slot -> acc + Atomic.get slot.value) 0 c.c_slots

let get t name =
  match locked t (fun () -> Hashtbl.find_opt t.counters (t.prefix ^ name)) with
  | Some c -> count c
  | None -> 0

let gauge t name =
  let name = t.prefix ^ name in
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_value = Atomic.make 0.0 } in
        Hashtbl.replace t.gauges name g;
        g)

let set g v = Atomic.set g.g_value v
let value g = Atomic.get g.g_value

let get_gauge t name =
  match locked t (fun () -> Hashtbl.find_opt t.gauges (t.prefix ^ name)) with
  | Some g -> Atomic.get g.g_value
  | None -> 0.0

let in_scope t name = String.starts_with ~prefix:t.prefix name

let counters t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ c acc -> if in_scope t c.c_name then (c.c_name, count c) :: acc else acc)
        t.counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ g acc ->
          if in_scope t g.g_name then (g.g_name, Atomic.get g.g_value) :: acc else acc)
        t.gauges [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t = (counters t, gauges t)

let pp ppf t =
  let counters, gauges = snapshot t in
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %d@." name v) counters;
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %g@." name v) gauges

let to_string t = Format.asprintf "%a" pp t
