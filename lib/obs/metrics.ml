type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type t = {
  prefix : string;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let create () = { prefix = ""; counters = Hashtbl.create 32; gauges = Hashtbl.create 8 }
let scope t name = { t with prefix = t.prefix ^ name ^ "." }
let prefix t = t.prefix

let counter t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let count c = c.c_value

let get t name =
  match Hashtbl.find_opt t.counters (t.prefix ^ name) with
  | Some c -> c.c_value
  | None -> 0

let gauge t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace t.gauges name g;
    g

let set g v = g.g_value <- v
let value g = g.g_value

let get_gauge t name =
  match Hashtbl.find_opt t.gauges (t.prefix ^ name) with
  | Some g -> g.g_value
  | None -> 0.0

let in_scope t name = String.starts_with ~prefix:t.prefix name

let counters t =
  Hashtbl.fold
    (fun _ c acc -> if in_scope t c.c_name then (c.c_name, c.c_value) :: acc else acc)
    t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold
    (fun _ g acc -> if in_scope t g.g_name then (g.g_name, g.g_value) :: acc else acc)
    t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %d@." name v) (counters t);
  List.iter (fun (name, v) -> Format.fprintf ppf "%s %g@." name v) (gauges t)

let to_string t = Format.asprintf "%a" pp t
