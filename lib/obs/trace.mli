(** Bounded structured event trace.

    A fixed-capacity ring of timestamped events: when the ring is full the
    oldest event is overwritten and {!dropped} counts how many were lost —
    never silently, unlike an unbounded log that silently eats memory or a
    modulo index that silently wraps.  Each event carries a wall-clock
    timestamp (from the [clock] supplied at creation) and an optional
    virtual-time stamp for simulator-driven sources.

    Recording is allocation-light: one record per event, no formatting
    until the trace is read back. *)

type event = {
  wall : float;  (** clock () at record time *)
  virt : float option;  (** virtual time, when the source has one *)
  name : string;  (** event kind, e.g. ["fault.drop"] *)
  detail : string;  (** free-form payload, possibly [""] *)
}

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] defaults to 1024 and must be positive; [clock] defaults to
    [fun () -> 0.] — pass [Unix.gettimeofday] for real timestamps. *)

val record : ?virt:float -> ?detail:string -> t -> string -> unit
(** [record t name] appends an event, evicting the oldest if full. *)

val events : t -> event list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded. *)

val dropped : t -> int
(** Events evicted by the capacity bound ([recorded - retained]). *)

val capacity : t -> int
val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per retained event, plus a final [... N earlier events
    dropped] line when the bound was hit. *)
