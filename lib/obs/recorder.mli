(** Append-only event/effect capture log for deterministic replay.

    A recorder collects, in arrival order, every event a sans-IO protocol
    machine consumed and every effect it emitted, each tagged with the
    {e actor} (machine instance) it belongs to — ["s0"] for session 0's
    sender, ["r2"] for receiver 2.  A [meta] key/value header carries
    whatever setup the replayer needs to reconstruct the machines
    (config, payload bytes, RNG seeds).

    The recorder is protocol-agnostic: bodies are opaque single-line
    strings (the machine's own serialization, see
    {!Rmc_proto.Np_machine.event_to_string}).  {!save}/{!load} use a
    line-oriented text format safe to check into a repository:
    {v
    # rmc-replay 1
    meta <key> <value ...>
    E <actor> <event body ...>
    X <actor> <effect body ...>
    v} *)

type kind = Event | Effect

type entry = { actor : string; kind : kind; body : string }

type t

val create : unit -> t

val set_meta : t -> string -> string -> unit
(** Set (or overwrite) a meta key.  Keys must be non-empty and contain no
    whitespace; values must be single-line.
    @raise Invalid_argument otherwise. *)

val meta : t -> string -> string option

val meta_all : t -> (string * string) list
(** Insertion order. *)

val record_event : t -> actor:string -> string -> unit
(** Append one consumed-event line.  Actors must be non-empty and contain
    no whitespace; bodies must be single-line.
    @raise Invalid_argument otherwise. *)

val record_effect : t -> actor:string -> string -> unit

val entries : t -> entry list
(** Recording order. *)

val length : t -> int

val save : path:string -> t -> unit
(** Write the capture to [path] (truncating). *)

val load : path:string -> (t, string) result
(** Parse a capture written by {!save}.  Total: malformed files yield
    [Error] with a line diagnostic, never an exception. *)
