(** Fault injection at the datagram boundary.

    A {!spec} declares, per datagram, what the network is allowed to do to
    it: drop it (driven by a {!Rmc_sim.Loss} process, so bursty and
    trace-driven drop patterns come for free), duplicate it, hold it back
    so a later datagram overtakes it (reorder), defer it (delay), or flip
    bytes in it (corrupt).  A {!t} is the stateful shim built from a spec:
    feed it outgoing datagrams with {!apply} and it decides their fate,
    counting every decision into {!Metrics} counters (prefix [fault.]) and
    optionally a {!Trace}.

    The shim is transport-agnostic: it never touches a socket.  The caller
    supplies [send] (deliver these bytes now) and [defer] (run this thunk
    after d seconds) — in the UDP transport those map to [sendto] and
    {!Rmc_transport.Reactor.after}; in tests they can be pure.

    Specs have a compact textual form for CLI use
    ([drop=0.1,dup=0.05,reorder=0.02,delay=0.001:0.01,corrupt=0.01,seed=7]);
    see {!spec_of_string}. *)

type drop =
  | No_drop
  | Drop_bernoulli of float  (** independent loss, p in [0, 1) *)
  | Drop_burst of { p : float; mean_burst : float; rate : float }
      (** {!Rmc_sim.Loss.markov2} bursty loss at [rate] datagrams/s *)

type spec = {
  drop : drop;
  duplicate : float;  (** probability a datagram is sent twice *)
  reorder : float;
      (** probability a datagram is held until the next one passes it
          (flushed after 30 ms if nothing follows) *)
  delay : (float * float) option;  (** uniform extra delay, seconds *)
  corrupt : float;  (** probability 1-3 bytes are flipped *)
  seed : int;
}

val none : spec
(** Everything off; the shim becomes a counted pass-through. *)

val spec_of_string : string -> (spec, string) result
(** Parse [key=value] pairs separated by commas.  Keys: [drop] (a
    probability, or [burst:P:LEN:RATE]), [dup], [reorder], [corrupt]
    (probabilities), [delay] ([MIN:MAX] or a single value, seconds),
    [seed].  Unknown keys, malformed numbers and out-of-range
    probabilities are errors. *)

val spec_to_string : spec -> string
(** Normalized textual form; omits disabled faults.
    [spec_of_string (spec_to_string s)] re-reads every enabled field. *)

type t

val create : ?metrics:Metrics.t -> ?trace:Trace.t -> spec -> t
(** Build the shim.  Counters are registered in [metrics] (an internal
    registry is created if omitted — reachable via {!stats}). *)

val spec : t -> spec

val apply :
  t ->
  now:float ->
  defer:(float -> (unit -> unit) -> unit) ->
  send:(Bytes.t -> unit) ->
  Bytes.t ->
  unit
(** Pass one outgoing datagram through the shim.  [now] must be
    non-decreasing across calls (it drives the drop process).  [send] may
    be called zero, one or two times, immediately or from a [defer]red
    thunk; the bytes passed to [send] are never the caller's buffer when
    corrupted (a copy is mangled). *)

type stats = {
  injected : int;  (** datagrams entering the shim *)
  dropped : int;
  duplicated : int;  (** extra copies created *)
  reordered : int;  (** datagrams held back *)
  delayed : int;
  corrupted : int;  (** datagrams mangled *)
  corrupt_copies : int;  (** mangled byte-strings handed to [send] *)
  delivered : int;  (** total [send] calls issued *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
