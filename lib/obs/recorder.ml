type kind = Event | Effect

type entry = { actor : string; kind : kind; body : string }

type t = {
  mutable meta_rev : (string * string) list;
  mutable entries_rev : entry list;
  mutable count : int;
}

let create () = { meta_rev = []; entries_rev = []; count = 0 }

let check_token ~what token =
  if token = "" then invalid_arg (Printf.sprintf "Recorder: empty %s" what);
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Recorder: whitespace in %s %S" what token))
    token

let check_body body =
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then invalid_arg "Recorder: newline in body")
    body

let set_meta t key value =
  check_token ~what:"meta key" key;
  check_body value;
  t.meta_rev <- (key, value) :: List.remove_assoc key t.meta_rev

let meta t key = List.assoc_opt key (List.rev t.meta_rev)

let meta_all t = List.rev t.meta_rev

let record t kind ~actor body =
  check_token ~what:"actor" actor;
  check_body body;
  t.entries_rev <- { actor; kind; body } :: t.entries_rev;
  t.count <- t.count + 1

let record_event t ~actor body = record t Event ~actor body
let record_effect t ~actor body = record t Effect ~actor body

let entries t = List.rev t.entries_rev
let length t = t.count

let magic = "# rmc-replay 1"

let save ~path t =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel (magic ^ "\n");
      List.iter
        (fun (key, value) -> Printf.fprintf channel "meta %s %s\n" key value)
        (meta_all t);
      List.iter
        (fun { actor; kind; body } ->
          let tag = match kind with Event -> "E" | Effect -> "X" in
          Printf.fprintf channel "%s %s %s\n" tag actor body)
        (entries t))

(* Split a line into its first two space-separated tokens plus the rest of
   the line verbatim (bodies and meta values may contain spaces). *)
let split3 line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match String.index_opt rest ' ' with
    | None -> None
    | Some j ->
      Some
        ( String.sub line 0 i,
          String.sub rest 0 j,
          String.sub rest (j + 1) (String.length rest - j - 1) ))

let load ~path =
  match open_in path with
  | exception Sys_error reason -> Error reason
  | channel ->
    Fun.protect
      ~finally:(fun () -> close_in channel)
      (fun () ->
        let t = create () in
        let line_no = ref 0 in
        let fail reason = Error (Printf.sprintf "%s:%d: %s" path !line_no reason) in
        let rec loop () =
          match input_line channel with
          | exception End_of_file -> Ok t
          | line ->
            incr line_no;
            if !line_no = 1 then
              if line = magic then loop () else fail "not an rmc-replay capture"
            else if line = "" then loop ()
            else (
              match split3 line with
              | Some ("meta", key, value) ->
                set_meta t key value;
                loop ()
              | Some ("E", actor, body) ->
                record_event t ~actor body;
                loop ()
              | Some ("X", actor, body) ->
                record_effect t ~actor body;
                loop ()
              | Some _ | None -> fail "malformed line")
        in
        loop ())
