module Rng = Rmc_numerics.Rng
module Header = Rmc_wire.Header
module Buffer_pool = Rmc_pool.Buffer_pool
module Metrics = Rmc_obs.Metrics
module Trace = Rmc_obs.Trace
module Fault = Rmc_obs.Fault
module Recorder = Rmc_obs.Recorder
module Profile = Rmc_core.Profile
module Error = Rmc_core.Error
module Np_machine = Rmc_proto.Np_machine
module Np_replay = Rmc_proto.Np_replay
module Controller = Rmc_control.Controller

type transport = [ `Unicast | `Multicast ]

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;
  slot : float;
  linger : float;
  session_timeout : float;
  codec : Rmc_rse.Codec.kind;
  controller : Profile.controller;
}

let default_config =
  {
    k = 8;
    h = 16;
    proactive = 0;
    payload_size = 512;
    spacing = 0.0005;
    slot = 0.020;
    linger = 0.050;
    session_timeout = 5.0;
    codec = `Rse;
    controller = `Static;
  }

let config_of_profile ?(linger = default_config.linger)
    ?(session_timeout = default_config.session_timeout) (p : Profile.t) =
  (* pre_encode has no wall-clock equivalent here: the UDP sender encodes
     parities on demand, so the flag is dropped. *)
  {
    k = p.Profile.k;
    h = p.Profile.h;
    proactive = p.Profile.proactive;
    payload_size = p.Profile.payload_size;
    spacing = p.Profile.pacing;
    slot = p.Profile.slot;
    linger;
    session_timeout;
    codec = p.Profile.codec;
    controller = p.Profile.controller;
  }

let profile_of_config c =
  {
    Profile.k = c.k;
    h = c.h;
    proactive = c.proactive;
    payload_size = c.payload_size;
    pacing = c.spacing;
    slot = c.slot;
    pre_encode = false;
    codec = c.codec;
    controller = c.controller;
  }

let machine_config c =
  { Np_machine.k = c.k; h = c.h; proactive = c.proactive; pre_encode = false;
    slot = c.slot; codec = c.codec }

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  completed : int;
  verified : bool;
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;
}

type session_report = {
  session : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  completed : int;  (* receivers that completed every TG of this session *)
  verified : bool;
  ejected : (int * int) list;  (* (receiver, local tg) pairs *)
}

type multi_report = {
  receivers : int;
  session_reports : session_report array;
  naks_sent : int;
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  all_verified : bool;
  wall_seconds : float;
  counters : (string * int) list;
}

(* --- session demux on the wire ---------------------------------------- *)

(* The 32-bit wire [tg_id] carries the session id in its upper 16 bits and
   the session-local TG index in the lower 16 — no wire-format change, and
   a single-session run (sid 0) puts exactly the bytes on the wire it
   always did.  [wire_tg_unchecked] is the hot-path composer for inputs
   the entry-point validation has already bounded; {!wire_tg} is the
   range-checked public face. *)
let wire_tg_unchecked ~sid local = (sid lsl 16) lor local

let wire_tg ~sid local =
  if sid < 0 || sid > 0xFFFF then
    Error.invalid_arg ~context:"Udp_np.wire_tg" "session id outside 16-bit range"
  else if local < 0 || local > 0xFFFF then
    Error.invalid_arg ~context:"Udp_np.wire_tg" "local tg outside 16-bit range"
  else Ok (wire_tg_unchecked ~sid local)

(* Decode-side masks: a hostile or corrupted tg_id must not index outside
   either 16-bit namespace. *)
let sid_of_wire wire = (wire lsr 16) land 0xFFFF
let local_of_wire wire = wire land 0xFFFF

(* The damping RNG a receiver's machine draws from is split off from the
   loss-injection stream so a replay (which sees no loss draws — dropped
   datagrams never become events) can reconstruct it from the seed alone. *)
let receiver_machine_seed ~seed ~id = seed + (id * 7919) + 104729

(* --- socket helpers -------------------------------------------------- *)

(* A UDP datagram cannot exceed 64 KiB, so receive buffers of this size
   per socket and one pool of buffers this size per engine (send) cover
   every packet the protocol can produce. *)
let max_datagram = 65536

(* The largest UDP payload the kernel accepts in one datagram (65535 minus
   IP and UDP headers): the budget a coalesced frame must fit. *)
let max_frame = 65507

let rec retry_eintr f =
  match f () with
  | value -> value
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let make_socket () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try
     Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
     Unix.set_nonblock socket
   with e ->
     Unix.close socket;
     raise e);
  socket

(* A socket plus the failure-observation channel every send shares, a recv
   ring datagrams are decoded straight out of (no per-datagram copy), and
   the reusable send batch a tick's frames are flushed through — all
   allocated once per socket instead of per tick. *)
type net = {
  socket : Unix.file_descr;
  ring : Udp_batch.recv;
  tx_batch : Udp_batch.send;
  tx_errors : Metrics.counter;
  datagrams_tx : Metrics.counter;
  datagrams_rx : Metrics.counter;
  syscalls_tx : Metrics.counter;
  syscalls_rx : Metrics.counter;
  trace : Trace.t option;
}

let send_slice net packet off len destination =
  (* Loopback sends never legitimately short-write a datagram this small.
     EINTR is retried until the send reaches a real outcome; everything
     else (including EAGAIN under extreme pressure, which behaves like
     network loss) is counted and traced — never silently swallowed. *)
  Metrics.incr net.datagrams_tx;
  Metrics.incr net.syscalls_tx;
  match retry_eintr (fun () -> Unix.sendto net.socket packet off len [] destination) with
  | _ -> ()
  | exception Unix.Unix_error (err, _, _) ->
    Metrics.incr net.tx_errors;
    (match net.trace with
    | Some trace -> Trace.record ~detail:(Unix.error_message err) trace "udp.tx_error"
    | None -> ())

let send_bytes net packet destination =
  send_slice net packet 0 (Bytes.length packet) destination

(* Walk a datagram that may be a coalesced frame: several consecutive
   encoded messages, each self-delimited by its header's length field.  A
   boundary that cannot be established (bad magic after a valid prefix,
   truncation) ends the walk — the rest of the frame is undecodable; a
   message that delimits but fails validation (a corrupted CRC) is skipped
   and the walk continues at the next boundary. *)
let walk_frame ?on_decode_error buffer ~len ~from handle =
  let fail () = match on_decode_error with Some f -> f () | None -> () in
  let rec go off =
    if off < len then
      match Header.frame_length buffer ~off ~len:(len - off) with
      | Error _ -> fail ()
      | Ok frame_len ->
        (match Header.decode_slice buffer ~off ~len:frame_len with
        | Ok message -> handle message from
        | Error _ -> fail ());
        go (off + frame_len)
  in
  go 0

let drain ?on_decode_error ~scratch socket handle =
  let rec loop () =
    match retry_eintr (fun () -> Unix.recvfrom socket scratch 0 (Bytes.length scratch) [])
    with
    | length, from ->
      walk_frame ?on_decode_error scratch ~len:length ~from handle;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* ICMP port-unreachable bounce from a peer that closed; ignore. *)
      loop ()
  in
  loop ()

(* Ring-based drain: up to [slots] queued datagrams per syscall.  A drain
   that fills every slot loops (more may be queued); a partial fill means
   the socket is dry — no trailing empty recv syscall. *)
let drain_socket ?on_decode_error net handle =
  let rec loop () =
    Metrics.incr net.syscalls_rx;
    let n = Udp_batch.recv_batch net.ring net.socket in
    for i = 0 to n - 1 do
      Metrics.incr net.datagrams_rx;
      walk_frame ?on_decode_error (Udp_batch.slot net.ring i)
        ~len:(Udp_batch.slot_len net.ring i)
        ~from:(Udp_batch.slot_from net.ring i)
        handle
    done;
    if n = Udp_batch.slots net.ring then loop ()
  in
  loop ()

(* --- sender ----------------------------------------------------------- *)

(* The protocol lives in the shared sans-IO core; this driver owns the
   session id, the socket fan-out, pacing via the reactor, the fault shim
   and the metrics.  The machine speaks session-local tg ids; every
   outgoing message is rewritten into the wire namespace here. *)
type sender = {
  sid : int;
  config : config;
  reactor : Reactor.t;
  net : net;
  pool : Buffer_pool.t;
  group : Unix.sockaddr list;
  machine : Np_machine.Sender.t;
  controller : Controller.t option;  (* None iff config.controller = `Static *)
  mutable applied : Controller.decision;  (* last decision fed as Retune *)
  shim : Fault.t option;
  recorder : Recorder.t option;
  mutable sending : bool;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_rx : Metrics.counter;
  c_rounds : Metrics.counter;
}

let sender_actor sender = "s" ^ string_of_int sender.sid

(* One frame of a tick's batch: a pooled buffer accumulating sealed
   messages back to back, and whether the fault shim applies (it only sees
   data/parity, and only when frames carry a single message). *)
type frame = { buf : Bytes.t; mutable len : int; payload_bearing : bool }

(* Serialize a machine-emitted message at [off] of a pooled buffer.  The
   machine speaks session-local tg ids; rather than rebuilding the message
   in the wire namespace, the sid is poked into the already-encoded bytes
   and the CRC resealed in place.  A single-session run (sid 0) needs no
   rewrite and puts exactly the bytes on the wire it always did. *)
let sender_encode sender buf ~off message =
  let len = Header.encode_into buf ~off message in
  if sender.sid <> 0 then begin
    Header.set_tg_id buf ~off (wire_tg_unchecked ~sid:sender.sid (Header.tg_id message));
    Header.reseal_slice buf ~off ~len
  end;
  len

(* Append a message to the tick's batch.  Without a fault shim the message
   coalesces onto the current frame while it fits the kernel's datagram
   budget — a whole tick rides one datagram per destination.  With a shim,
   every message gets its own frame so faults keep applying per datagram
   per destination, exactly as the loss model demands. *)
let sender_enqueue sender batch message =
  match batch with
  | frame :: _
    when Option.is_none sender.shim
         && frame.len + Header.encoded_size message <= max_frame ->
    frame.len <- frame.len + sender_encode sender frame.buf ~off:frame.len message;
    batch
  | _ ->
    let buf = Buffer_pool.checkout sender.pool in
    let len = sender_encode sender buf ~off:0 message in
    let payload_bearing =
      match message with
      | Header.Data _ | Header.Parity _ -> true
      | Header.Poll _ | Header.Nak _ | Header.Exhausted _ -> false
    in
    { buf; len; payload_bearing } :: batch

(* Flush a tick's batch.

   The batched path hands every (frame, destination) pair to one
   sendmmsg-backed flush: serialize + sid-rewrite + reseal happen once per
   message regardless of group size, and the whole tick costs
   ceil(frames * group / max_batch) syscalls instead of one per datagram.
   In multicast mode [group] is the single group address and the kernel
   does the fan-out too.

   The fault shim sits at the datagram boundary: every data/parity
   datagram passes through it independently per destination, so each
   receiver of the unicast fan-out sees its own drop/duplicate/reorder/
   corrupt pattern.  Control datagrams (POLL, NAK, EXHAUSTED) are spared,
   matching the loss model of the §5 analysis (and of the [~loss]
   reception injection below).  Shimmed runs therefore keep one message
   per frame and the per-datagram send path. *)
let sender_flush sender batch =
  match sender.shim with
  | Some shim ->
    List.iter
      (fun { buf; len; payload_bearing } ->
        (if payload_bearing then begin
           (* The shim may hold, delay or duplicate the datagram beyond
              this tick, so it owns a copy; pooled buffers never escape
              the flush. *)
           let packet = Bytes.sub buf 0 len in
           let now = Unix.gettimeofday () in
           List.iter
             (fun destination ->
               Fault.apply shim ~now
                 ~defer:(fun delay thunk -> ignore (Reactor.after sender.reactor delay thunk))
                 ~send:(fun bytes -> send_bytes sender.net bytes destination)
                 packet)
             sender.group
         end
         else
           List.iter
             (fun destination -> send_slice sender.net buf 0 len destination)
             sender.group);
        Buffer_pool.release sender.pool buf)
      (List.rev batch)
  | None ->
    let tx = sender.net.tx_batch in
    List.iter
      (fun frame ->
        List.iter
          (fun destination -> Udp_batch.add tx frame.buf ~len:frame.len destination)
          sender.group)
      (List.rev batch);
    let { Udp_batch.sent; errors; syscalls } = Udp_batch.flush tx sender.net.socket in
    Metrics.incr ~by:sent sender.net.datagrams_tx;
    Metrics.incr ~by:syscalls sender.net.syscalls_tx;
    if errors > 0 then begin
      Metrics.incr ~by:errors sender.net.tx_errors;
      match sender.net.trace with
      | Some trace ->
        Trace.record ~detail:(string_of_int errors ^ " batched sends") trace "udp.tx_error"
      | None -> ()
    end;
    List.iter (fun frame -> Buffer_pool.release sender.pool frame.buf) batch

let sender_handle sender event =
  (match sender.recorder with
  | Some r ->
    Recorder.record_event r ~actor:(sender_actor sender) (Np_machine.event_to_string event)
  | None -> ());
  let effects = Np_machine.Sender.handle sender.machine event in
  (match sender.recorder with
  | Some r ->
    List.iter
      (fun e ->
        Recorder.record_effect r ~actor:(sender_actor sender) (Np_machine.effect_to_string e))
      effects
  | None -> ());
  (match sender.net.trace with
  | Some trace ->
    List.iter
      (function Np_machine.Trace detail -> Trace.record ~detail trace "np.sender" | _ -> ())
      effects
  | None -> ());
  effects

(* Apply the controller's current decision when it differs from the last
   one fed to the machine.  Routed through {!sender_handle} so the Retune
   event lands in the capture — replay stays deterministic without ever
   re-running the controller. *)
let maybe_retune sender =
  match sender.controller with
  | None -> ()
  | Some controller ->
    let d = Controller.decision controller in
    if not (Controller.decision_equal d sender.applied) then begin
      sender.applied <- d;
      ignore
        (sender_handle sender
           (Np_machine.Retune
              { proactive = d.Controller.proactive; budget = d.Controller.budget }))
    end

let sender_observe_poll sender message =
  match (sender.controller, message) with
  | Some controller, Header.Poll { tg_id; k; size; round } ->
    Controller.observe_poll controller ~tg:tg_id ~k ~size ~round
  | _ -> ()

let rec sender_pump sender =
  if not (Np_machine.Sender.pending sender.machine) then sender.sending <- false
  else begin
    maybe_retune sender;
    let effects = sender_handle sender Np_machine.Tick in
    (* Drain every Send effect of the tick into pooled frames, then flush
       them in one batched pass. *)
    let batch, delay =
      List.fold_left
        (fun (batch, acc) effect ->
          match effect with
          | Np_machine.Send message ->
            (match message with
            | Header.Data _ ->
              Metrics.incr sender.c_data;
              (sender_enqueue sender batch message, sender.config.spacing)
            | Header.Parity _ ->
              Metrics.incr sender.c_parity;
              (sender_enqueue sender batch message, sender.config.spacing)
            | Header.Poll _ ->
              Metrics.incr sender.c_poll;
              sender_observe_poll sender message;
              (sender_enqueue sender batch message, acc)
            | Header.Exhausted _ ->
              Metrics.incr sender.c_exhausted;
              (sender_enqueue sender batch message, acc)
            | Header.Nak _ -> (batch, acc))
          | Np_machine.Arm_timer _ | Np_machine.Cancel_timer _ | Np_machine.Deliver _
          | Np_machine.Ejected _ | Np_machine.Trace _ | Np_machine.Done ->
            (batch, acc))
        ([], 0.0) effects
    in
    sender_flush sender batch;
    ignore (Reactor.after sender.reactor delay (fun () -> sender_pump sender))
  end

let sender_wake sender =
  if not sender.sending then begin
    sender.sending <- true;
    ignore (Reactor.after sender.reactor 0.0 (fun () -> sender_pump sender))
  end

let sender_handle_nak sender ~tg_id ~need ~round =
  Metrics.incr sender.c_naks_rx;
  (match sender.controller with
  | Some controller -> Controller.observe_nak controller ~tg:tg_id ~need ~round
  | None -> ());
  let before = Np_machine.Sender.repair_rounds sender.machine in
  ignore (sender_handle sender (Np_machine.Feedback { tg = tg_id; need; round }));
  if Np_machine.Sender.repair_rounds sender.machine > before then
    Metrics.incr sender.c_rounds;
  if Np_machine.Sender.pending sender.machine then sender_wake sender

(* [metrics] is already scoped per session by the caller; the NAK handler
   for the shared socket lives with the driver, not here, because many
   senders share one socket. *)
let create_sender reactor ~net ~pool ~group ~config ~sid ~data ~receivers ~metrics ~shim
    ~recorder =
  let controller =
    match (config : config).controller with
    | `Static -> None
    | (`Ewma | `Gilbert_aware) as kind ->
      Some
        (Controller.create ~kind ~k:config.k ~h:config.h ~proactive:config.proactive
           ~receivers ~pacing:config.spacing ())
  in
  let sender =
    {
      sid;
      config;
      reactor;
      net;
      pool;
      group;
      machine = Np_machine.Sender.create (machine_config config) ~data;
      controller;
      applied = { Controller.proactive = min config.proactive config.h; budget = config.h };
      shim;
      recorder;
      sending = false;
      c_data = Metrics.counter metrics "tx.data";
      c_parity = Metrics.counter metrics "tx.parity";
      c_poll = Metrics.counter metrics "tx.poll";
      c_exhausted = Metrics.counter metrics "tx.exhausted";
      c_naks_rx = Metrics.counter metrics "sender.naks_rx";
      c_rounds = Metrics.counter metrics "sender.repair_rounds";
    }
  in
  sender_wake sender;
  sender

(* --- receiver ---------------------------------------------------------- *)

type receiver = {
  id : int;
  reactor : Reactor.t;
  net : net;  (* datagrams arrive here *)
  tx_net : net;  (* NAKs leave here; same as [net] in unicast mode *)
  self_addr : Unix.sockaddr option;
      (* multicast: the tx socket's address, to drop looped-back copies of
         our own NAKs (every group member receives every group datagram) *)
  pool : Buffer_pool.t;
  sender_addr : Unix.sockaddr;
  mutable nak_peers : Unix.sockaddr list;
      (* where NAKs go besides the sender: every peer (unicast mode) or
         the group address (multicast mode) *)
  loss_rng : Rng.t;  (* reception-loss injection (driver-side, not replayed) *)
  loss : float;
  machine : Np_machine.Receiver.t;
  timers : (int, Reactor.timer) Hashtbl.t;  (* armed NAK timers, by wire tg *)
  recorder : Recorder.t option;
  on_tg_complete : int -> Bytes.t array -> unit;
  on_ejected : int -> unit;
  mutable dropped : int;
  mutable decode_failures : int;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_tx : Metrics.counter;
  c_naks_overheard : Metrics.counter;
  c_suppressed : Metrics.counter;
  c_decode_fail : Metrics.counter;
  c_loss_drop : Metrics.counter;
  c_duplicates : Metrics.counter;
}

let receiver_actor receiver = "r" ^ string_of_int receiver.id

let rec receiver_handle receiver event =
  (match receiver.recorder with
  | Some r ->
    Recorder.record_event r ~actor:(receiver_actor receiver)
      (Np_machine.event_to_string event)
  | None -> ());
  let effects = Np_machine.Receiver.handle receiver.machine event in
  (match receiver.recorder with
  | Some r ->
    List.iter
      (fun e ->
        Recorder.record_effect r ~actor:(receiver_actor receiver)
          (Np_machine.effect_to_string e))
      effects
  | None -> ());
  List.iter (receiver_apply receiver) effects

and receiver_apply receiver effect =
  match effect with
  | Np_machine.Send (Header.Nak _ as nak) ->
    (* The NAK is "multicast": to the sender plus every peer (unicast
       fan-out) or the group (real multicast), so suppression really
       happens by overhearing datagrams.  One pooled buffer serves the
       whole fan-out. *)
    Metrics.incr receiver.c_naks_tx;
    Buffer_pool.with_buf receiver.pool (fun buf ->
        let len = Header.encode_into buf ~off:0 nak in
        send_slice receiver.tx_net buf 0 len receiver.sender_addr;
        List.iter (send_slice receiver.tx_net buf 0 len) receiver.nak_peers)
  | Np_machine.Arm_timer { tg; round; offset } ->
    (match Hashtbl.find_opt receiver.timers tg with
    | Some t -> Reactor.cancel t
    | None -> ());
    Hashtbl.replace receiver.timers tg
      (Reactor.after receiver.reactor offset (fun () ->
           Hashtbl.remove receiver.timers tg;
           receiver_handle receiver (Np_machine.Timer_fired { tg; round })))
  | Np_machine.Cancel_timer { tg } ->
    (match Hashtbl.find_opt receiver.timers tg with
    | Some t ->
      Reactor.cancel t;
      Hashtbl.remove receiver.timers tg
    | None -> ())
  | Np_machine.Deliver { tg; data; reconstructed = _ } -> receiver.on_tg_complete tg data
  | Np_machine.Ejected { tg } -> receiver.on_ejected tg
  | Np_machine.Trace detail ->
    (match receiver.net.trace with
    | Some trace -> Trace.record ~detail trace "np.receiver"
    | None -> ())
  | Np_machine.Send _ | Np_machine.Done -> ()

(* Data/parity reception: bump the metric mirroring the machine's internal
   duplicate count, which only the machine can classify. *)
let receiver_feed_payload receiver message =
  let before = Np_machine.Receiver.duplicates receiver.machine in
  receiver_handle receiver (Np_machine.Packet_received message);
  if Np_machine.Receiver.duplicates receiver.machine > before then
    Metrics.incr receiver.c_duplicates

let create_receiver reactor ~net ~tx_net ~self_addr ~nak_peers ~pool ~sender_addr ~config
    ~seed ~loss ~id ~metrics ~expected ~recorder ~on_tg_complete ~on_ejected =
  let machine_rng = Rng.create ~seed:(receiver_machine_seed ~seed ~id) () in
  let receiver =
    {
      id;
      reactor;
      net;
      tx_net;
      self_addr;
      pool;
      sender_addr;
      nak_peers;
      loss_rng = Rng.create ~seed:(seed + (id * 7919)) ();
      loss;
      machine =
        Np_machine.Receiver.create ~expected (machine_config config) ~rand:(fun () ->
            Rng.float machine_rng);
      timers = Hashtbl.create 16;
      recorder;
      on_tg_complete;
      on_ejected;
      dropped = 0;
      decode_failures = 0;
      c_data = Metrics.counter metrics "rx.data";
      c_parity = Metrics.counter metrics "rx.parity";
      c_poll = Metrics.counter metrics "rx.poll";
      c_exhausted = Metrics.counter metrics "rx.exhausted";
      c_naks_tx = Metrics.counter metrics "rx.naks_tx";
      c_naks_overheard = Metrics.counter metrics "rx.naks_overheard";
      c_suppressed = Metrics.counter metrics "rx.naks_suppressed";
      c_decode_fail = Metrics.counter metrics "rx.decode_failures";
      c_loss_drop = Metrics.counter metrics "rx.loss_dropped";
      c_duplicates = Metrics.counter metrics "rx.duplicates";
    }
  in
  Reactor.on_readable reactor net.socket (fun () ->
      drain_socket
        ~on_decode_error:(fun () ->
          receiver.decode_failures <- receiver.decode_failures + 1;
          Metrics.incr receiver.c_decode_fail)
        net
        (fun message from ->
          let own_echo =
            match receiver.self_addr with Some self -> from = self | None -> false
          in
          if not own_echo then begin
            let from_sender = from = receiver.sender_addr in
            match message with
            | Header.Data _ ->
              Metrics.incr receiver.c_data;
              if Rng.bernoulli receiver.loss_rng receiver.loss then begin
                receiver.dropped <- receiver.dropped + 1;
                Metrics.incr receiver.c_loss_drop
              end
              else receiver_feed_payload receiver message
            | Header.Parity _ ->
              Metrics.incr receiver.c_parity;
              if Rng.bernoulli receiver.loss_rng receiver.loss then begin
                receiver.dropped <- receiver.dropped + 1;
                Metrics.incr receiver.c_loss_drop
              end
              else receiver_feed_payload receiver message
            | Header.Poll _ ->
              Metrics.incr receiver.c_poll;
              receiver_handle receiver (Np_machine.Packet_received message)
            | Header.Nak _ ->
              if not from_sender then begin
                Metrics.incr receiver.c_naks_overheard;
                let before = Np_machine.Receiver.naks_suppressed receiver.machine in
                receiver_handle receiver (Np_machine.Packet_received message);
                if Np_machine.Receiver.naks_suppressed receiver.machine > before then
                  Metrics.incr receiver.c_suppressed
              end
            | Header.Exhausted _ ->
              Metrics.incr receiver.c_exhausted;
              receiver_handle receiver (Np_machine.Packet_received message)
          end));
  receiver

(* --- the shared engine: N sessions, one reactor ------------------------ *)

(* Everything the entry points share: one reactor, one sender socket
   multiplexing every session's datagrams (demuxed by the sid in the wire
   [tg_id]), one receiver socket per receiver serving all sessions.
   [sids] maps each session index to its wire session id — the identity
   for {!run_local}/{!run_multi}, a shard's slice of the global namespace
   for {!run_sharded}. *)
let run_engine ~config ~metrics ~trace ~recorder ~faults ~transport ~receivers ~loss ~seed
    ~sessions ~sids ~sender_metrics =
  let shim = Option.map (fun spec -> Fault.create ~metrics ?trace spec) faults in
  let reactor = Reactor.create ~metrics () in
  let started = Unix.gettimeofday () in
  let nsessions = Array.length sessions in
  let tg_counts =
    Array.map (fun data -> (Array.length data + config.k - 1) / config.k) sessions
  in
  let index_of_sid = Hashtbl.create nsessions in
  Array.iteri (fun index sid -> Hashtbl.replace index_of_sid sid index) sids;
  (match recorder with
  | Some r ->
    Np_replay.record_setup r ~controller:config.controller
      ~config:(machine_config config) ~payload_size:config.payload_size ~receivers
      ~sessions
      ~rx_seeds:(Array.init receivers (fun id -> receiver_machine_seed ~seed ~id))
      ()
  | None -> ());

  let tx_errors = Metrics.counter metrics "udp.tx_errors" in
  let datagrams_tx = Metrics.counter metrics "udp.datagrams_tx" in
  let datagrams_rx = Metrics.counter metrics "udp.datagrams_rx" in
  let syscalls_tx = Metrics.counter metrics "udp.syscalls_tx" in
  let syscalls_rx = Metrics.counter metrics "udp.syscalls_rx" in
  let make_net socket =
    {
      socket;
      ring = Udp_batch.recv_create ~buf_size:max_datagram ();
      tx_batch = Udp_batch.send_create ();
      tx_errors;
      datagrams_tx;
      datagrams_rx;
      syscalls_tx;
      syscalls_rx;
      trace;
    }
  in
  (* One pool serves every session's sender and every receiver's NAK path:
     buffers are released within the event that checked them out, so the
     peak population is the largest single batch, not the datagram rate. *)
  let pool = Buffer_pool.create ~capacity:16 ~buf_size:max_datagram () in
  (* Every socket is registered here the moment it exists and closed in
     the one [Fun.protect] finalizer below — an exception anywhere between
     socket creation and the end of the run (a raising machine
     constructor, a reactor refusing one more descriptor, EMFILE halfway
     through the receiver array) can no longer leak descriptors. *)
  let opened = ref [] in
  let track socket =
    opened := socket :: !opened;
    socket
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun socket -> try Unix.close socket with Unix.Unix_error _ -> ()) !opened)
  @@ fun () ->
  let mcast_group =
    match transport with
    | `Unicast -> None
    | `Multicast -> Some (Udp_multicast.group_of_seed seed)
  in
  let sender_socket =
    track
      (match mcast_group with
      | None -> make_socket ()
      | Some _ -> Udp_multicast.sender_socket ())
  in
  let sender_net = make_net sender_socket in
  let receiver_nets =
    Array.init receivers (fun _ ->
        make_net
          (track
             (match mcast_group with
             | None -> make_socket ()
             | Some group -> Udp_multicast.receiver_socket group)))
  in
  (* Real multicast receivers share one port, so their group sockets
     cannot source NAKs distinguishably; each gets a private tx socket
     whose address also identifies (and filters) its own looped-back group
     copies. *)
  let receiver_tx_nets =
    match mcast_group with
    | None -> None
    | Some _ ->
      Some (Array.init receivers (fun _ -> make_net (track (Udp_multicast.sender_socket ()))))
  in
  let addr_of socket = Unix.getsockname socket in
  let sender_addr = addr_of sender_socket in
  let receiver_addrs = Array.map (fun net -> addr_of net.socket) receiver_nets in

  (* Every receiver must resolve every TG of every session: the expected
     set that drives the machines' Done effect. *)
  let expected =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun index data ->
              let total = Array.length data in
              List.init tg_counts.(index) (fun local ->
                  ( wire_tg_unchecked ~sid:sids.(index) local,
                    min config.k (total - (local * config.k)) )))
            sessions))
  in

  let completed_tgs = Array.init receivers (fun _ -> Array.make nsessions 0) in
  let verified = Array.make nsessions true in
  let ejected = Array.make nsessions [] in
  let finished_pairs = ref 0 in
  let total_pairs = receivers * nsessions in
  let reference ~index local =
    let data = sessions.(index) in
    let base = local * config.k in
    let len = min config.k (Array.length data - base) in
    Array.sub data base len
  in
  let maybe_finish () =
    if !finished_pairs = total_pairs then
      (* Let in-flight datagrams drain, then stop the loop. *)
      ignore (Reactor.after reactor config.linger (fun () -> Reactor.stop reactor))
  in
  let rxs =
    Array.init receivers (fun id ->
        let on_tg_complete wire decoded =
          match Hashtbl.find_opt index_of_sid (sid_of_wire wire) with
          | Some index when local_of_wire wire < tg_counts.(index) ->
            let local = local_of_wire wire in
            if not (Array.for_all2 Bytes.equal decoded (reference ~index local)) then
              verified.(index) <- false;
            completed_tgs.(id).(index) <- completed_tgs.(id).(index) + 1;
            if completed_tgs.(id).(index) = tg_counts.(index) then begin
              incr finished_pairs;
              maybe_finish ()
            end
          | Some _ | None -> ()
        in
        let on_ejected wire =
          match Hashtbl.find_opt index_of_sid (sid_of_wire wire) with
          | Some index -> ejected.(index) <- (id, local_of_wire wire) :: ejected.(index)
          | None -> ()
        in
        let tx_net, self_addr =
          match receiver_tx_nets with
          | Some nets -> (nets.(id), Some (addr_of nets.(id).socket))
          | None -> (receiver_nets.(id), None)
        in
        let nak_peers =
          match mcast_group with
          | Some group -> [ Udp_multicast.group_addr group ]
          | None -> []
        in
        create_receiver reactor ~net:receiver_nets.(id) ~tx_net ~self_addr ~nak_peers
          ~pool ~sender_addr ~config ~seed ~loss ~id ~metrics ~expected ~recorder
          ~on_tg_complete ~on_ejected)
  in
  (* Unicast: each receiver overhears the NAKs of all the others via an
     explicit fan-out.  Multicast: the group address set above already
     reaches every member. *)
  (match mcast_group with
  | None ->
    Array.iteri
      (fun id receiver ->
        receiver.nak_peers <-
          Array.to_list
            (Array.of_seq
               (Seq.filter_map
                  (fun other -> if other = id then None else Some receiver_addrs.(other))
                  (Seq.init receivers Fun.id))))
      rxs
  | Some _ -> ());
  let group =
    match mcast_group with
    | Some g -> [ Udp_multicast.group_addr g ]
    | None -> Array.to_list receiver_addrs
  in
  let senders =
    Array.init nsessions (fun index ->
        create_sender reactor ~net:sender_net ~pool ~group ~config ~sid:sids.(index)
          ~data:sessions.(index) ~receivers
          ~metrics:(sender_metrics sids.(index))
          ~shim ~recorder)
  in
  (* One handler on the shared sender socket demuxes incoming NAKs to the
     owning session's sender. *)
  let c_decode_fail = Metrics.counter metrics "sender.decode_failures" in
  Reactor.on_readable reactor sender_socket (fun () ->
      drain_socket ~on_decode_error:(fun () -> Metrics.incr c_decode_fail) sender_net
        (fun message _from ->
          match message with
          | Header.Nak { tg_id; need; round } ->
            (match Hashtbl.find_opt index_of_sid (sid_of_wire tg_id) with
            | Some index ->
              sender_handle_nak senders.(index) ~tg_id:(local_of_wire tg_id) ~need ~round
            | None -> ())
          | Header.Data _ | Header.Parity _ | Header.Poll _ | Header.Exhausted _ -> ()));

  let minor_words_before = Gc.minor_words () in
  Reactor.run ~deadline:(started +. config.session_timeout) reactor;
  (* Surface the datapath's cost profile: minor words and syscalls burned
     per datagram moved (the end-host cost §5 bounds throughput by) and
     how hard the pool worked.  A leak — a pooled buffer still checked out
     after the loop drained — is a driver bug and raises. *)
  let minor_words = Gc.minor_words () -. minor_words_before in
  let moved = Metrics.count datagrams_tx + Metrics.count datagrams_rx in
  Metrics.set
    (Metrics.gauge metrics "datapath.minor_words_per_datagram")
    (minor_words /. float_of_int (max 1 moved));
  Metrics.set
    (Metrics.gauge metrics "udp.syscalls_per_datagram")
    (float_of_int (Metrics.count syscalls_tx + Metrics.count syscalls_rx)
    /. float_of_int (max 1 moved));
  Metrics.set (Metrics.gauge metrics "pool.capacity") (float_of_int (Buffer_pool.capacity pool));
  Metrics.set
    (Metrics.gauge metrics "pool.peak_outstanding")
    (float_of_int (Buffer_pool.peak_outstanding pool));
  Metrics.set
    (Metrics.gauge metrics "pool.overflow_allocs")
    (float_of_int (Buffer_pool.overflow_allocs pool));
  Buffer_pool.assert_quiescent pool;

  let session_reports =
    Array.init nsessions (fun index ->
        let completed =
          Array.fold_left
            (fun acc per_rx -> if per_rx.(index) = tg_counts.(index) then acc + 1 else acc)
            0 completed_tgs
        in
        {
          session = sids.(index);
          transmission_groups = tg_counts.(index);
          data_tx = Np_machine.Sender.data_tx senders.(index).machine;
          parity_tx = Np_machine.Sender.parity_tx senders.(index).machine;
          polls = Np_machine.Sender.polls senders.(index).machine;
          completed;
          verified = verified.(index) && completed = receivers;
          ejected = List.rev ejected.(index);
        })
  in
  let sum_rx f = Array.fold_left (fun acc r -> acc + f r) 0 rxs in
  {
    receivers;
    session_reports;
    naks_sent = sum_rx (fun r -> Np_machine.Receiver.naks_sent r.machine);
    naks_suppressed = sum_rx (fun r -> Np_machine.Receiver.naks_suppressed r.machine);
    datagrams_dropped = sum_rx (fun r -> r.dropped);
    decode_failures = sum_rx (fun r -> r.decode_failures);
    all_verified = Array.for_all (fun s -> s.verified) session_reports;
    wall_seconds = Unix.gettimeofday () -. started;
    counters = Metrics.counters metrics;
  }

let validate ~context ~config ~receivers ~loss ~sessions =
  if Array.exists (fun data -> Array.length data = 0) sessions || Array.length sessions = 0
  then Error.invalid_arg ~context "no data"
  else if loss < 0.0 || loss >= 1.0 then Error.invalid_arg ~context "loss outside [0,1)"
  else if
    Array.exists
      (fun data ->
        Array.exists (fun payload -> Bytes.length payload <> config.payload_size) data)
      sessions
  then Error.invalid_arg ~context "payload size mismatch"
  else if receivers < 1 then Error.invalid_arg ~context "need at least one receiver"
  else if config.k < 1 || config.h < 0 then Error.invalid_arg ~context "need k >= 1 and h >= 0"
  else if
    config.h > Rmc_rse.Codec.max_repair (Rmc_rse.Codec.of_kind config.codec) ~k:config.k
  then Error.invalid_arg ~context "repair budget exceeds the codec's index space"
  else if config.payload_size > max_datagram - Header.header_size then
    Error.invalid_arg ~context "payload does not fit a 64 KiB datagram"
  else if config.controller <> `Static && config.h < 1 then
    Error.invalid_arg ~context
      "an adaptive controller needs a repair budget to retune (h = 0)"
  else if Array.length sessions > 0x10000 then
    Error.invalid_arg ~context "too many sessions (wire sid is 16-bit)"
  else if
    Array.exists
      (fun data -> (Array.length data + config.k - 1) / config.k > 0x10000)
      sessions
  then Error.invalid_arg ~context "too many transmission groups (wire tg is 16-bit)"
  else Ok ()

(* --- entry points ------------------------------------------------------ *)

let identity_sids sessions = Array.init (Array.length sessions) Fun.id

let run_multi ?(config = default_config) ?metrics ?trace ?recorder ?faults
    ?(transport = `Unicast) ~receivers ~loss ~seed ~sessions () =
  match validate ~context:"Udp_np.run_multi" ~config ~receivers ~loss ~sessions with
  | Error _ as e -> e
  | Ok () ->
    let metrics = match metrics with Some m -> m | None -> Metrics.create () in
    let sender_metrics sid = Metrics.scope metrics (Printf.sprintf "session.%d" sid) in
    Ok
      (run_engine ~config ~metrics ~trace ~recorder ~faults ~transport ~receivers ~loss
         ~seed ~sessions ~sids:(identity_sids sessions) ~sender_metrics)

let run_multi_exn ?config ?metrics ?trace ?recorder ?faults ?transport ~receivers ~loss
    ~seed ~sessions () =
  Error.get_exn
    (run_multi ?config ?metrics ?trace ?recorder ?faults ?transport ~receivers ~loss ~seed
       ~sessions ())

let run_local ?(config = default_config) ?metrics ?trace ?recorder ?faults
    ?(transport = `Unicast) ~receivers ~loss ~seed ~data () =
  match
    validate ~context:"Udp_np.run_local" ~config ~receivers ~loss ~sessions:[| data |]
  with
  | Error _ as e -> e
  | Ok () ->
    let metrics = match metrics with Some m -> m | None -> Metrics.create () in
    (* Single session: sid 0, unscoped counters, byte-identical wire ids. *)
    let multi =
      run_engine ~config ~metrics ~trace ~recorder ~faults ~transport ~receivers ~loss
        ~seed
        ~sessions:[| data |]
        ~sids:[| 0 |]
        ~sender_metrics:(fun _ -> metrics)
    in
    let s = multi.session_reports.(0) in
    Ok
      {
        receivers;
        transmission_groups = s.transmission_groups;
        data_tx = s.data_tx;
        parity_tx = s.parity_tx;
        polls = s.polls;
        naks_sent = multi.naks_sent;
        naks_suppressed = multi.naks_suppressed;
        datagrams_dropped = multi.datagrams_dropped;
        decode_failures = multi.decode_failures;
        completed = s.completed;
        verified = s.verified;
        ejected = s.ejected;
        wall_seconds = multi.wall_seconds;
        counters = multi.counters;
      }

let run_local_exn ?config ?metrics ?trace ?recorder ?faults ?transport ~receivers ~loss
    ~seed ~data () =
  Error.get_exn
    (run_local ?config ?metrics ?trace ?recorder ?faults ?transport ~receivers ~loss ~seed
       ~data ())

(* --- sharded runs: one reactor per domain ------------------------------ *)

(* Contiguous balanced partition of [0, n) into [shards] slices. *)
let shard_slices ~shards n =
  let q = n / shards and r = n mod shards in
  Array.init shards (fun shard ->
      let lo = (shard * q) + min shard r in
      let size = q + if shard < r then 1 else 0 in
      Array.init size (fun i -> lo + i))

let run_sharded ?(config = default_config) ?metrics ?(transport = `Unicast) ~shards
    ~receivers ~loss ~seed ~sessions () =
  let context = "Udp_np.run_sharded" in
  match validate ~context ~config ~receivers ~loss ~sessions with
  | Error _ as e -> e
  | Ok () ->
    if shards < 1 then Error.invalid_arg ~context "need at least one shard"
    else begin
      let metrics = match metrics with Some m -> m | None -> Metrics.create () in
      let nsessions = Array.length sessions in
      let shards = min shards nsessions in
      let slices = shard_slices ~shards nsessions in
      (* Per-session sender counters keep their global sid scope; the flat
         udp/rx/tx counters are shared atomics, so shard totals sum. *)
      let sender_metrics sid = Metrics.scope metrics (Printf.sprintf "session.%d" sid) in
      let run_shard shard =
        let sids = slices.(shard) in
        run_engine ~config ~metrics ~trace:None ~recorder:None ~faults:None ~transport
          ~receivers ~loss
          ~seed:(seed + (shard * 16127))
          ~sessions:(Array.map (fun sid -> sessions.(sid)) sids)
          ~sids ~sender_metrics
      in
      let spawned =
        Array.init (shards - 1) (fun i -> Domain.spawn (fun () -> run_shard (i + 1)))
      in
      let first = run_shard 0 in
      let rest = Array.map Domain.join spawned in
      let shard_reports = Array.append [| first |] rest in
      let merged = Array.make nsessions first.session_reports.(0) in
      Array.iter
        (fun (r : multi_report) ->
          Array.iter (fun s -> merged.(s.session) <- s) r.session_reports)
        shard_reports;
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 shard_reports in
      Ok
        {
          receivers;
          session_reports = merged;
          naks_sent = sum (fun r -> r.naks_sent);
          naks_suppressed = sum (fun r -> r.naks_suppressed);
          datagrams_dropped = sum (fun r -> r.datagrams_dropped);
          decode_failures = sum (fun r -> r.decode_failures);
          all_verified = Array.for_all (fun s -> s.verified) merged;
          wall_seconds =
            Array.fold_left (fun acc r -> Float.max acc r.wall_seconds) 0.0 shard_reports;
          counters = Metrics.counters metrics;
        }
    end

let run_sharded_exn ?config ?metrics ?transport ~shards ~receivers ~loss ~seed ~sessions
    () =
  Error.get_exn
    (run_sharded ?config ?metrics ?transport ~shards ~receivers ~loss ~seed ~sessions ())
