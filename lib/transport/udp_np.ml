module Rng = Rmc_numerics.Rng
module Rse = Rmc_rse.Rse
module Fec_block = Rmc_rse.Fec_block
module Header = Rmc_wire.Header
module Metrics = Rmc_obs.Metrics
module Fault = Rmc_obs.Fault
module Profile = Rmc_core.Profile
module Error = Rmc_core.Error

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;
  slot : float;
  linger : float;
  session_timeout : float;
}

let default_config =
  {
    k = 8;
    h = 16;
    proactive = 0;
    payload_size = 512;
    spacing = 0.0005;
    slot = 0.020;
    linger = 0.050;
    session_timeout = 5.0;
  }

let config_of_profile ?(linger = default_config.linger)
    ?(session_timeout = default_config.session_timeout) (p : Profile.t) =
  (* pre_encode has no wall-clock equivalent here: the UDP sender encodes
     parities on demand, so the flag is dropped. *)
  {
    k = p.Profile.k;
    h = p.Profile.h;
    proactive = p.Profile.proactive;
    payload_size = p.Profile.payload_size;
    spacing = p.Profile.pacing;
    slot = p.Profile.slot;
    linger;
    session_timeout;
  }

let profile_of_config c =
  {
    Profile.k = c.k;
    h = c.h;
    proactive = c.proactive;
    payload_size = c.payload_size;
    pacing = c.spacing;
    slot = c.slot;
    pre_encode = false;
  }

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  completed : int;
  verified : bool;
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;
}

type session_report = {
  session : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  completed : int;  (* receivers that completed every TG of this session *)
  verified : bool;
  ejected : (int * int) list;  (* (receiver, local tg) pairs *)
}

type multi_report = {
  receivers : int;
  session_reports : session_report array;
  naks_sent : int;
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  all_verified : bool;
  wall_seconds : float;
  counters : (string * int) list;
}

(* --- session demux on the wire ---------------------------------------- *)

(* The 32-bit wire [tg_id] carries the session id in its upper 16 bits and
   the session-local TG index in the lower 16 — no wire-format change, and
   a single-session run (sid 0) puts exactly the bytes on the wire it
   always did. *)
let wire_tg ~sid local = (sid lsl 16) lor local
let sid_of_wire wire = wire lsr 16
let local_of_wire wire = wire land 0xFFFF

(* --- socket helpers -------------------------------------------------- *)

let make_socket () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.set_nonblock socket;
  socket

let send_bytes socket packet destination =
  (* Loopback sends never legitimately short-write a datagram this small;
     EAGAIN under extreme pressure is treated as network loss. *)
  try ignore (Unix.sendto socket packet 0 (Bytes.length packet) [] destination)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let send_datagram socket message destination =
  send_bytes socket (Header.encode message) destination

let drain_socket ?on_decode_error socket handle =
  let buffer = Bytes.create 65536 in
  let rec loop () =
    match Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] with
    | length, from ->
      (match Header.decode (Bytes.sub buffer 0 length) with
      | Ok message -> handle message from
      | Error _ ->
        (* malformed datagrams are dropped, but no longer silently *)
        (match on_decode_error with Some f -> f () | None -> ()));
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* ICMP port-unreachable bounce from a peer that closed; ignore. *)
      loop ()
  in
  loop ()

(* --- sender ----------------------------------------------------------- *)

type tg_sender = {
  tg_id : int;  (* session-local *)
  block : Fec_block.Sender.t;
  mutable serviced_round : int;
}

type sender_job =
  | Send_packet of { tg : tg_sender; index : int }
  | Send_poll of { tg : tg_sender; size : int; round : int }
  | Send_exhausted of { tg : tg_sender }

type sender = {
  sid : int;
  config : config;
  reactor : Reactor.t;
  socket : Unix.file_descr;
  group : Unix.sockaddr list;
  tgs : tg_sender array;
  repair_queue : sender_job Queue.t;
  stream_queue : sender_job Queue.t;
  shim : Fault.t option;
  mutable sending : bool;
  mutable data_tx : int;
  mutable parity_tx : int;
  mutable polls : int;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_rx : Metrics.counter;
  c_rounds : Metrics.counter;
}

(* The fault shim sits here, at the datagram boundary: every data/parity
   datagram of the unicast fan-out passes through it independently, so each
   receiver sees its own drop/duplicate/reorder/corrupt pattern.  Control
   datagrams (POLL, NAK, EXHAUSTED) are spared, matching the loss model of
   the §5 analysis (and of the [~loss] reception injection below). *)
let sender_multicast sender message =
  match (sender.shim, message) with
  | Some shim, (Header.Data _ | Header.Parity _) ->
    let packet = Header.encode message in
    let now = Unix.gettimeofday () in
    List.iter
      (fun destination ->
        Fault.apply shim ~now
          ~defer:(fun delay thunk -> ignore (Reactor.after sender.reactor delay thunk))
          ~send:(fun bytes -> send_bytes sender.socket bytes destination)
          packet)
      sender.group
  | _ -> List.iter (send_datagram sender.socket message) sender.group

let tg_k tg = Rse.k (Fec_block.Sender.codec tg.block)

let rec sender_pump sender =
  let job =
    if not (Queue.is_empty sender.repair_queue) then Some (Queue.pop sender.repair_queue)
    else if not (Queue.is_empty sender.stream_queue) then Some (Queue.pop sender.stream_queue)
    else None
  in
  match job with
  | None -> sender.sending <- false
  | Some job ->
    let delay =
      match job with
      | Send_packet { tg; index } ->
        let k = tg_k tg in
        let id = wire_tg ~sid:sender.sid tg.tg_id in
        (if index < k then begin
           sender.data_tx <- sender.data_tx + 1;
           Metrics.incr sender.c_data;
           sender_multicast sender
             (Header.Data
                { tg_id = id; k; index; payload = (Fec_block.Sender.data tg.block).(index) })
         end
         else begin
           sender.parity_tx <- sender.parity_tx + 1;
           Metrics.incr sender.c_parity;
           sender_multicast sender
             (Header.Parity
                {
                  tg_id = id;
                  k;
                  index = index - k;
                  round = 0;
                  payload = Fec_block.Sender.parity tg.block (index - k);
                })
         end);
        sender.config.spacing
      | Send_poll { tg; size; round } ->
        sender.polls <- sender.polls + 1;
        Metrics.incr sender.c_poll;
        sender_multicast sender
          (Header.Poll { tg_id = wire_tg ~sid:sender.sid tg.tg_id; k = tg_k tg; size; round });
        0.0
      | Send_exhausted { tg } ->
        Metrics.incr sender.c_exhausted;
        sender_multicast sender (Header.Exhausted { tg_id = wire_tg ~sid:sender.sid tg.tg_id });
        0.0
    in
    ignore (Reactor.after sender.reactor delay (fun () -> sender_pump sender))

let sender_wake sender =
  if not sender.sending then begin
    sender.sending <- true;
    ignore (Reactor.after sender.reactor 0.0 (fun () -> sender_pump sender))
  end

let sender_handle_nak sender ~tg_id ~need ~round =
  Metrics.incr sender.c_naks_rx;
  if tg_id >= 0 && tg_id < Array.length sender.tgs then begin
    let tg = sender.tgs.(tg_id) in
    if tg.serviced_round < round then begin
      tg.serviced_round <- round;
      Metrics.incr sender.c_rounds;
      let remaining =
        Rse.h (Fec_block.Sender.codec tg.block) - Fec_block.Sender.parities_issued tg.block
      in
      if remaining = 0 then Queue.push (Send_exhausted { tg }) sender.repair_queue
      else begin
        let batch = min need remaining in
        let fresh = Fec_block.Sender.next_parities tg.block batch in
        List.iter
          (fun (j, _) ->
            Queue.push (Send_packet { tg; index = tg_k tg + j }) sender.repair_queue)
          fresh;
        Queue.push (Send_poll { tg; size = batch; round = round + 1 }) sender.repair_queue
      end;
      sender_wake sender
    end
  end

(* [metrics] is already scoped per session by the caller; the NAK handler
   for the shared socket lives with the driver, not here, because many
   senders share one socket. *)
let create_sender reactor ~socket ~group ~config ~sid ~data ~metrics ~shim =
  let total = Array.length data in
  let tg_count = (total + config.k - 1) / config.k in
  let tgs =
    Array.init tg_count (fun i ->
        let base = i * config.k in
        let len = min config.k (total - base) in
        (* Rse.create is memoized per (field, k, h) in Codec_core, so the
           N sessions of a multiplexed run share one codec (and its
           encode/decode plans) instead of building N copies. *)
        let codec = Rse.create ~k:len ~h:config.h () in
        { tg_id = i; block = Fec_block.Sender.create codec (Array.sub data base len);
          serviced_round = 0 })
  in
  let sender =
    {
      sid;
      config;
      reactor;
      socket;
      group;
      tgs;
      repair_queue = Queue.create ();
      stream_queue = Queue.create ();
      shim;
      sending = false;
      data_tx = 0;
      parity_tx = 0;
      polls = 0;
      c_data = Metrics.counter metrics "tx.data";
      c_parity = Metrics.counter metrics "tx.parity";
      c_poll = Metrics.counter metrics "tx.poll";
      c_exhausted = Metrics.counter metrics "tx.exhausted";
      c_naks_rx = Metrics.counter metrics "sender.naks_rx";
      c_rounds = Metrics.counter metrics "sender.repair_rounds";
    }
  in
  Array.iter
    (fun tg ->
      let k = tg_k tg in
      for index = 0 to k - 1 do
        Queue.push (Send_packet { tg; index }) sender.stream_queue
      done;
      let a = min config.proactive config.h in
      if a > 0 then
        List.iter
          (fun (j, _) -> Queue.push (Send_packet { tg; index = k + j }) sender.stream_queue)
          (Fec_block.Sender.next_parities tg.block a);
      Queue.push (Send_poll { tg; size = k + a; round = 1 }) sender.stream_queue)
    tgs;
  sender_wake sender;
  sender

(* --- receiver ---------------------------------------------------------- *)

type tg_receiver = {
  rx : Fec_block.Receiver.t;
  mutable delivered : bool;
  mutable gave_up : bool;
  mutable nak_timer : Reactor.timer option;
  mutable nak_round : int;
}

type receiver = {
  id : int;
  config : config;
  reactor : Reactor.t;
  socket : Unix.file_descr;
  sender_addr : Unix.sockaddr;
  mutable peer_addrs : Unix.sockaddr list;
  rng : Rng.t;
  loss : float;
  blocks : (int, tg_receiver) Hashtbl.t;  (* keyed by wire tg_id: demux for free *)
  on_tg_complete : int -> Bytes.t array -> unit;
  on_ejected : int -> unit;
  mutable naks_sent : int;
  mutable naks_suppressed : int;
  mutable dropped : int;
  mutable decode_failures : int;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_tx : Metrics.counter;
  c_naks_overheard : Metrics.counter;
  c_suppressed : Metrics.counter;
  c_decode_fail : Metrics.counter;
  c_loss_drop : Metrics.counter;
  c_duplicates : Metrics.counter;
}

let receiver_block receiver ~tg_id ~k =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | Some block -> block
  | None ->
    let codec = Rse.create ~k ~h:receiver.config.h () in
    let block =
      { rx = Fec_block.Receiver.create codec; delivered = false; gave_up = false;
        nak_timer = None; nak_round = 0 }
    in
    Hashtbl.replace receiver.blocks tg_id block;
    block

let receiver_store receiver ~tg_id ~k ~index payload =
  let block = receiver_block receiver ~tg_id ~k in
  if (not block.delivered) && not block.gave_up then
    if Fec_block.Receiver.add block.rx ~index payload then begin
      if Fec_block.Receiver.complete block.rx then begin
        block.delivered <- true;
        (match block.nak_timer with
        | Some timer ->
          Reactor.cancel timer;
          block.nak_timer <- None
        | None -> ());
        receiver.on_tg_complete tg_id (Fec_block.Receiver.decode block.rx)
      end
    end
    else Metrics.incr receiver.c_duplicates

let receiver_send_nak receiver ~tg_id ~round =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    block.nak_timer <- None;
    if (not block.delivered) && not block.gave_up then begin
      let need = Fec_block.Receiver.needed block.rx in
      if need > 0 then begin
        receiver.naks_sent <- receiver.naks_sent + 1;
        Metrics.incr receiver.c_naks_tx;
        block.nak_round <- round;
        let nak = Header.Nak { tg_id; need; round } in
        send_datagram receiver.socket nak receiver.sender_addr;
        List.iter (send_datagram receiver.socket nak) receiver.peer_addrs
      end
    end

let receiver_handle_poll receiver ~tg_id ~k ~size ~round =
  let block = receiver_block receiver ~tg_id ~k in
  if (not block.delivered) && (not block.gave_up) && block.nak_round < round then begin
    let need = Fec_block.Receiver.needed block.rx in
    if need > 0 then begin
      let slot_index = max 0 (size - need) in
      let offset =
        (float_of_int slot_index *. receiver.config.slot)
        +. (Rng.float receiver.rng *. receiver.config.slot)
      in
      (match block.nak_timer with Some t -> Reactor.cancel t | None -> ());
      block.nak_timer <-
        Some (Reactor.after receiver.reactor offset (fun () ->
                  receiver_send_nak receiver ~tg_id ~round))
    end
  end

let receiver_overhear_nak receiver ~tg_id ~need ~round =
  Metrics.incr receiver.c_naks_overheard;
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    (match block.nak_timer with
    | Some timer when block.nak_round < round ->
      if need >= Fec_block.Receiver.needed block.rx then begin
        Reactor.cancel timer;
        block.nak_timer <- None;
        block.nak_round <- round;
        receiver.naks_suppressed <- receiver.naks_suppressed + 1;
        Metrics.incr receiver.c_suppressed
      end
    | Some _ | None -> ())

let receiver_handle_exhausted receiver ~tg_id =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    if (not block.delivered) && not block.gave_up then begin
      block.gave_up <- true;
      (match block.nak_timer with Some t -> Reactor.cancel t | None -> ());
      block.nak_timer <- None;
      receiver.on_ejected tg_id
    end

let create_receiver reactor ~socket ~sender_addr ~config ~seed ~loss ~id ~metrics
    ~on_tg_complete ~on_ejected =
  let receiver =
    {
      id;
      config;
      reactor;
      socket;
      sender_addr;
      peer_addrs = [];
      rng = Rng.create ~seed ();
      loss;
      blocks = Hashtbl.create 16;
      on_tg_complete;
      on_ejected;
      naks_sent = 0;
      naks_suppressed = 0;
      dropped = 0;
      decode_failures = 0;
      c_data = Metrics.counter metrics "rx.data";
      c_parity = Metrics.counter metrics "rx.parity";
      c_poll = Metrics.counter metrics "rx.poll";
      c_exhausted = Metrics.counter metrics "rx.exhausted";
      c_naks_tx = Metrics.counter metrics "rx.naks_tx";
      c_naks_overheard = Metrics.counter metrics "rx.naks_overheard";
      c_suppressed = Metrics.counter metrics "rx.naks_suppressed";
      c_decode_fail = Metrics.counter metrics "rx.decode_failures";
      c_loss_drop = Metrics.counter metrics "rx.loss_dropped";
      c_duplicates = Metrics.counter metrics "rx.duplicates";
    }
  in
  Reactor.on_readable reactor socket (fun () ->
      drain_socket
        ~on_decode_error:(fun () ->
          receiver.decode_failures <- receiver.decode_failures + 1;
          Metrics.incr receiver.c_decode_fail)
        socket
        (fun message from ->
          let from_sender = from = receiver.sender_addr in
          match message with
          | Header.Data { tg_id; k; index; payload } ->
            Metrics.incr receiver.c_data;
            if Rng.bernoulli receiver.rng receiver.loss then begin
              receiver.dropped <- receiver.dropped + 1;
              Metrics.incr receiver.c_loss_drop
            end
            else receiver_store receiver ~tg_id ~k ~index payload
          | Header.Parity { tg_id; k; index; round = _; payload } ->
            Metrics.incr receiver.c_parity;
            if Rng.bernoulli receiver.rng receiver.loss then begin
              receiver.dropped <- receiver.dropped + 1;
              Metrics.incr receiver.c_loss_drop
            end
            else receiver_store receiver ~tg_id ~k ~index:(k + index) payload
          | Header.Poll { tg_id; k; size; round } ->
            Metrics.incr receiver.c_poll;
            receiver_handle_poll receiver ~tg_id ~k ~size ~round
          | Header.Nak { tg_id; need; round } ->
            if not from_sender then receiver_overhear_nak receiver ~tg_id ~need ~round
          | Header.Exhausted { tg_id } ->
            Metrics.incr receiver.c_exhausted;
            receiver_handle_exhausted receiver ~tg_id));
  receiver

(* --- the shared engine: N sessions, one reactor ------------------------ *)

(* Everything both entry points share: one reactor, one sender socket
   multiplexing every session's datagrams (demuxed by the sid in the wire
   [tg_id]), one receiver socket per receiver serving all sessions. *)
let run_engine ~config ~metrics ~faults ~receivers ~loss ~seed ~sessions ~sender_metrics =
  let shim = Option.map (fun spec -> Fault.create ~metrics spec) faults in
  let reactor = Reactor.create ~metrics () in
  let started = Unix.gettimeofday () in
  let nsessions = Array.length sessions in
  let tg_counts =
    Array.map (fun data -> (Array.length data + config.k - 1) / config.k) sessions
  in

  let sender_socket = make_socket () in
  let receiver_sockets = Array.init receivers (fun _ -> make_socket ()) in
  let addr_of socket = Unix.getsockname socket in
  let sender_addr = addr_of sender_socket in
  let receiver_addrs = Array.map addr_of receiver_sockets in

  let completed_tgs = Array.init receivers (fun _ -> Array.make nsessions 0) in
  let verified = Array.make nsessions true in
  let ejected = Array.make nsessions [] in
  let finished_pairs = ref 0 in
  let total_pairs = receivers * nsessions in
  let reference ~sid local =
    let data = sessions.(sid) in
    let base = local * config.k in
    let len = min config.k (Array.length data - base) in
    Array.sub data base len
  in
  let maybe_finish () =
    if !finished_pairs = total_pairs then
      (* Let in-flight datagrams drain, then stop the loop. *)
      ignore (Reactor.after reactor config.linger (fun () -> Reactor.stop reactor))
  in
  let rxs =
    Array.init receivers (fun id ->
        let on_tg_complete wire decoded =
          let sid = sid_of_wire wire and local = local_of_wire wire in
          if not (Array.for_all2 Bytes.equal decoded (reference ~sid local)) then
            verified.(sid) <- false;
          completed_tgs.(id).(sid) <- completed_tgs.(id).(sid) + 1;
          if completed_tgs.(id).(sid) = tg_counts.(sid) then begin
            incr finished_pairs;
            maybe_finish ()
          end
        in
        let on_ejected wire =
          let sid = sid_of_wire wire in
          ejected.(sid) <- (id, local_of_wire wire) :: ejected.(sid)
        in
        create_receiver reactor ~socket:receiver_sockets.(id) ~sender_addr ~config
          ~seed:(seed + (id * 7919)) ~loss ~id ~metrics ~on_tg_complete ~on_ejected)
  in
  (* Each receiver overhears the NAKs of all the others. *)
  Array.iteri
    (fun id receiver ->
      receiver.peer_addrs <-
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun other -> if other = id then None else Some receiver_addrs.(other))
                (Seq.init receivers Fun.id))))
    rxs;
  let group = Array.to_list receiver_addrs in
  let senders =
    Array.init nsessions (fun sid ->
        create_sender reactor ~socket:sender_socket ~group ~config ~sid
          ~data:sessions.(sid) ~metrics:(sender_metrics sid) ~shim)
  in
  (* One handler on the shared sender socket demuxes incoming NAKs to the
     owning session's sender. *)
  let c_decode_fail = Metrics.counter metrics "sender.decode_failures" in
  Reactor.on_readable reactor sender_socket (fun () ->
      drain_socket ~on_decode_error:(fun () -> Metrics.incr c_decode_fail) sender_socket
        (fun message _from ->
          match message with
          | Header.Nak { tg_id; need; round } ->
            let sid = sid_of_wire tg_id in
            if sid < nsessions then
              sender_handle_nak senders.(sid) ~tg_id:(local_of_wire tg_id) ~need ~round
          | Header.Data _ | Header.Parity _ | Header.Poll _ | Header.Exhausted _ -> ()));

  Reactor.run ~deadline:(started +. config.session_timeout) reactor;

  let session_reports =
    Array.init nsessions (fun sid ->
        let completed =
          Array.fold_left
            (fun acc per_rx -> if per_rx.(sid) = tg_counts.(sid) then acc + 1 else acc)
            0 completed_tgs
        in
        {
          session = sid;
          transmission_groups = tg_counts.(sid);
          data_tx = senders.(sid).data_tx;
          parity_tx = senders.(sid).parity_tx;
          polls = senders.(sid).polls;
          completed;
          verified = verified.(sid) && completed = receivers;
          ejected = List.rev ejected.(sid);
        })
  in
  let multi =
    {
      receivers;
      session_reports;
      naks_sent = Array.fold_left (fun acc r -> acc + r.naks_sent) 0 rxs;
      naks_suppressed = Array.fold_left (fun acc r -> acc + r.naks_suppressed) 0 rxs;
      datagrams_dropped = Array.fold_left (fun acc r -> acc + r.dropped) 0 rxs;
      decode_failures = Array.fold_left (fun acc r -> acc + r.decode_failures) 0 rxs;
      all_verified = Array.for_all (fun s -> s.verified) session_reports;
      wall_seconds = Unix.gettimeofday () -. started;
      counters = Metrics.counters metrics;
    }
  in
  Unix.close sender_socket;
  Array.iter Unix.close receiver_sockets;
  multi

let validate ~context ~config ~receivers ~loss ~sessions =
  if Array.exists (fun data -> Array.length data = 0) sessions || Array.length sessions = 0
  then Error.invalid_arg ~context "no data"
  else if loss < 0.0 || loss >= 1.0 then Error.invalid_arg ~context "loss outside [0,1)"
  else if
    Array.exists
      (fun data ->
        Array.exists (fun payload -> Bytes.length payload <> config.payload_size) data)
      sessions
  then Error.invalid_arg ~context "payload size mismatch"
  else if receivers < 1 then Error.invalid_arg ~context "need at least one receiver"
  else if config.k < 1 || config.h < 0 then Error.invalid_arg ~context "need k >= 1 and h >= 0"
  else if Array.length sessions > 0x10000 then
    Error.invalid_arg ~context "too many sessions (wire sid is 16-bit)"
  else if
    Array.exists
      (fun data -> (Array.length data + config.k - 1) / config.k > 0x10000)
      sessions
  then Error.invalid_arg ~context "too many transmission groups (wire tg is 16-bit)"
  else Ok ()

(* --- entry points ------------------------------------------------------ *)

let run_multi ?(config = default_config) ?metrics ?faults ~receivers ~loss ~seed ~sessions
    () =
  match validate ~context:"Udp_np.run_multi" ~config ~receivers ~loss ~sessions with
  | Error _ as e -> e
  | Ok () ->
    let metrics = match metrics with Some m -> m | None -> Metrics.create () in
    let sender_metrics sid = Metrics.scope metrics (Printf.sprintf "session.%d" sid) in
    Ok (run_engine ~config ~metrics ~faults ~receivers ~loss ~seed ~sessions ~sender_metrics)

let run_multi_exn ?config ?metrics ?faults ~receivers ~loss ~seed ~sessions () =
  Error.get_exn (run_multi ?config ?metrics ?faults ~receivers ~loss ~seed ~sessions ())

let run_local ?(config = default_config) ?metrics ?faults ~receivers ~loss ~seed ~data ()
    =
  match
    validate ~context:"Udp_np.run_local" ~config ~receivers ~loss ~sessions:[| data |]
  with
  | Error _ as e -> e
  | Ok () ->
    let metrics = match metrics with Some m -> m | None -> Metrics.create () in
    (* Single session: sid 0, unscoped counters, byte-identical wire ids. *)
    let multi =
      run_engine ~config ~metrics ~faults ~receivers ~loss ~seed ~sessions:[| data |]
        ~sender_metrics:(fun _ -> metrics)
    in
    let s = multi.session_reports.(0) in
    Ok
      {
        receivers;
        transmission_groups = s.transmission_groups;
        data_tx = s.data_tx;
        parity_tx = s.parity_tx;
        polls = s.polls;
        naks_sent = multi.naks_sent;
        naks_suppressed = multi.naks_suppressed;
        datagrams_dropped = multi.datagrams_dropped;
        decode_failures = multi.decode_failures;
        completed = s.completed;
        verified = s.verified;
        ejected = s.ejected;
        wall_seconds = multi.wall_seconds;
        counters = multi.counters;
      }

let run_local_exn ?config ?metrics ?faults ~receivers ~loss ~seed ~data () =
  Error.get_exn (run_local ?config ?metrics ?faults ~receivers ~loss ~seed ~data ())
