module Rng = Rmc_numerics.Rng
module Rse = Rmc_rse.Rse
module Fec_block = Rmc_rse.Fec_block
module Header = Rmc_wire.Header
module Metrics = Rmc_obs.Metrics
module Fault = Rmc_obs.Fault

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;
  slot : float;
  linger : float;
  session_timeout : float;
}

let default_config =
  {
    k = 8;
    h = 16;
    proactive = 0;
    payload_size = 512;
    spacing = 0.0005;
    slot = 0.020;
    linger = 0.050;
    session_timeout = 5.0;
  }

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  completed : int;
  verified : bool;
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;
}

(* --- socket helpers -------------------------------------------------- *)

let make_socket () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.set_nonblock socket;
  socket

let send_bytes socket packet destination =
  (* Loopback sends never legitimately short-write a datagram this small;
     EAGAIN under extreme pressure is treated as network loss. *)
  try ignore (Unix.sendto socket packet 0 (Bytes.length packet) [] destination)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let send_datagram socket message destination =
  send_bytes socket (Header.encode message) destination

let drain_socket ?on_decode_error socket handle =
  let buffer = Bytes.create 65536 in
  let rec loop () =
    match Unix.recvfrom socket buffer 0 (Bytes.length buffer) [] with
    | length, from ->
      (match Header.decode (Bytes.sub buffer 0 length) with
      | Ok message -> handle message from
      | Error _ ->
        (* malformed datagrams are dropped, but no longer silently *)
        (match on_decode_error with Some f -> f () | None -> ()));
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* ICMP port-unreachable bounce from a peer that closed; ignore. *)
      loop ()
  in
  loop ()

(* --- sender ----------------------------------------------------------- *)

type tg_sender = {
  tg_id : int;
  block : Fec_block.Sender.t;
  mutable serviced_round : int;
}

type sender_job =
  | Send_packet of { tg : tg_sender; index : int }
  | Send_poll of { tg : tg_sender; size : int; round : int }
  | Send_exhausted of { tg : tg_sender }

type sender = {
  config : config;
  reactor : Reactor.t;
  socket : Unix.file_descr;
  group : Unix.sockaddr list;
  tgs : tg_sender array;
  repair_queue : sender_job Queue.t;
  stream_queue : sender_job Queue.t;
  shim : Fault.t option;
  mutable sending : bool;
  mutable data_tx : int;
  mutable parity_tx : int;
  mutable polls : int;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_rx : Metrics.counter;
  c_rounds : Metrics.counter;
}

(* The fault shim sits here, at the datagram boundary: every data/parity
   datagram of the unicast fan-out passes through it independently, so each
   receiver sees its own drop/duplicate/reorder/corrupt pattern.  Control
   datagrams (POLL, NAK, EXHAUSTED) are spared, matching the loss model of
   the §5 analysis (and of the [~loss] reception injection below). *)
let sender_multicast sender message =
  match (sender.shim, message) with
  | Some shim, (Header.Data _ | Header.Parity _) ->
    let packet = Header.encode message in
    let now = Unix.gettimeofday () in
    List.iter
      (fun destination ->
        Fault.apply shim ~now
          ~defer:(fun delay thunk -> ignore (Reactor.after sender.reactor delay thunk))
          ~send:(fun bytes -> send_bytes sender.socket bytes destination)
          packet)
      sender.group
  | _ -> List.iter (send_datagram sender.socket message) sender.group

let tg_k tg = Rse.k (Fec_block.Sender.codec tg.block)

let rec sender_pump sender =
  let job =
    if not (Queue.is_empty sender.repair_queue) then Some (Queue.pop sender.repair_queue)
    else if not (Queue.is_empty sender.stream_queue) then Some (Queue.pop sender.stream_queue)
    else None
  in
  match job with
  | None -> sender.sending <- false
  | Some job ->
    let delay =
      match job with
      | Send_packet { tg; index } ->
        let k = tg_k tg in
        (if index < k then begin
           sender.data_tx <- sender.data_tx + 1;
           Metrics.incr sender.c_data;
           sender_multicast sender
             (Header.Data
                { tg_id = tg.tg_id; k; index; payload = (Fec_block.Sender.data tg.block).(index) })
         end
         else begin
           sender.parity_tx <- sender.parity_tx + 1;
           Metrics.incr sender.c_parity;
           sender_multicast sender
             (Header.Parity
                {
                  tg_id = tg.tg_id;
                  k;
                  index = index - k;
                  round = 0;
                  payload = Fec_block.Sender.parity tg.block (index - k);
                })
         end);
        sender.config.spacing
      | Send_poll { tg; size; round } ->
        sender.polls <- sender.polls + 1;
        Metrics.incr sender.c_poll;
        sender_multicast sender (Header.Poll { tg_id = tg.tg_id; k = tg_k tg; size; round });
        0.0
      | Send_exhausted { tg } ->
        Metrics.incr sender.c_exhausted;
        sender_multicast sender (Header.Exhausted { tg_id = tg.tg_id });
        0.0
    in
    ignore (Reactor.after sender.reactor delay (fun () -> sender_pump sender))

let sender_wake sender =
  if not sender.sending then begin
    sender.sending <- true;
    ignore (Reactor.after sender.reactor 0.0 (fun () -> sender_pump sender))
  end

let sender_handle_nak sender ~tg_id ~need ~round =
  Metrics.incr sender.c_naks_rx;
  if tg_id >= 0 && tg_id < Array.length sender.tgs then begin
    let tg = sender.tgs.(tg_id) in
    if tg.serviced_round < round then begin
      tg.serviced_round <- round;
      Metrics.incr sender.c_rounds;
      let remaining =
        Rse.h (Fec_block.Sender.codec tg.block) - Fec_block.Sender.parities_issued tg.block
      in
      if remaining = 0 then Queue.push (Send_exhausted { tg }) sender.repair_queue
      else begin
        let batch = min need remaining in
        let fresh = Fec_block.Sender.next_parities tg.block batch in
        List.iter
          (fun (j, _) ->
            Queue.push (Send_packet { tg; index = tg_k tg + j }) sender.repair_queue)
          fresh;
        Queue.push (Send_poll { tg; size = batch; round = round + 1 }) sender.repair_queue
      end;
      sender_wake sender
    end
  end

let create_sender reactor ~socket ~group ~config ~data ~metrics ~shim =
  let total = Array.length data in
  let tg_count = (total + config.k - 1) / config.k in
  let tgs =
    Array.init tg_count (fun i ->
        let base = i * config.k in
        let len = min config.k (total - base) in
        let codec = Rse.create ~k:len ~h:config.h () in
        { tg_id = i; block = Fec_block.Sender.create codec (Array.sub data base len);
          serviced_round = 0 })
  in
  let sender =
    {
      config;
      reactor;
      socket;
      group;
      tgs;
      repair_queue = Queue.create ();
      stream_queue = Queue.create ();
      shim;
      sending = false;
      data_tx = 0;
      parity_tx = 0;
      polls = 0;
      c_data = Metrics.counter metrics "tx.data";
      c_parity = Metrics.counter metrics "tx.parity";
      c_poll = Metrics.counter metrics "tx.poll";
      c_exhausted = Metrics.counter metrics "tx.exhausted";
      c_naks_rx = Metrics.counter metrics "sender.naks_rx";
      c_rounds = Metrics.counter metrics "sender.repair_rounds";
    }
  in
  Array.iter
    (fun tg ->
      let k = tg_k tg in
      for index = 0 to k - 1 do
        Queue.push (Send_packet { tg; index }) sender.stream_queue
      done;
      let a = min config.proactive config.h in
      if a > 0 then
        List.iter
          (fun (j, _) -> Queue.push (Send_packet { tg; index = k + j }) sender.stream_queue)
          (Fec_block.Sender.next_parities tg.block a);
      Queue.push (Send_poll { tg; size = k + a; round = 1 }) sender.stream_queue)
    tgs;
  let c_decode_fail = Metrics.counter metrics "sender.decode_failures" in
  Reactor.on_readable reactor socket (fun () ->
      drain_socket ~on_decode_error:(fun () -> Metrics.incr c_decode_fail) socket
        (fun message _from ->
          match message with
          | Header.Nak { tg_id; need; round } -> sender_handle_nak sender ~tg_id ~need ~round
          | Header.Data _ | Header.Parity _ | Header.Poll _ | Header.Exhausted _ -> ()));
  sender_wake sender;
  sender

(* --- receiver ---------------------------------------------------------- *)

type tg_receiver = {
  rx : Fec_block.Receiver.t;
  mutable delivered : bool;
  mutable gave_up : bool;
  mutable nak_timer : Reactor.timer option;
  mutable nak_round : int;
}

type receiver = {
  id : int;
  config : config;
  reactor : Reactor.t;
  socket : Unix.file_descr;
  sender_addr : Unix.sockaddr;
  mutable peer_addrs : Unix.sockaddr list;
  rng : Rng.t;
  loss : float;
  blocks : (int, tg_receiver) Hashtbl.t;
  on_tg_complete : int -> Bytes.t array -> unit;
  on_ejected : int -> unit;
  mutable naks_sent : int;
  mutable naks_suppressed : int;
  mutable dropped : int;
  mutable decode_failures : int;
  c_data : Metrics.counter;
  c_parity : Metrics.counter;
  c_poll : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_naks_tx : Metrics.counter;
  c_naks_overheard : Metrics.counter;
  c_suppressed : Metrics.counter;
  c_decode_fail : Metrics.counter;
  c_loss_drop : Metrics.counter;
  c_duplicates : Metrics.counter;
}

let receiver_block receiver ~tg_id ~k =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | Some block -> block
  | None ->
    let codec = Rse.create ~k ~h:receiver.config.h () in
    let block =
      { rx = Fec_block.Receiver.create codec; delivered = false; gave_up = false;
        nak_timer = None; nak_round = 0 }
    in
    Hashtbl.replace receiver.blocks tg_id block;
    block

let receiver_store receiver ~tg_id ~k ~index payload =
  let block = receiver_block receiver ~tg_id ~k in
  if (not block.delivered) && not block.gave_up then
    if Fec_block.Receiver.add block.rx ~index payload then begin
      if Fec_block.Receiver.complete block.rx then begin
        block.delivered <- true;
        (match block.nak_timer with
        | Some timer ->
          Reactor.cancel timer;
          block.nak_timer <- None
        | None -> ());
        receiver.on_tg_complete tg_id (Fec_block.Receiver.decode block.rx)
      end
    end
    else Metrics.incr receiver.c_duplicates

let receiver_send_nak receiver ~tg_id ~round =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    block.nak_timer <- None;
    if (not block.delivered) && not block.gave_up then begin
      let need = Fec_block.Receiver.needed block.rx in
      if need > 0 then begin
        receiver.naks_sent <- receiver.naks_sent + 1;
        Metrics.incr receiver.c_naks_tx;
        block.nak_round <- round;
        let nak = Header.Nak { tg_id; need; round } in
        send_datagram receiver.socket nak receiver.sender_addr;
        List.iter (send_datagram receiver.socket nak) receiver.peer_addrs
      end
    end

let receiver_handle_poll receiver ~tg_id ~k ~size ~round =
  let block = receiver_block receiver ~tg_id ~k in
  if (not block.delivered) && (not block.gave_up) && block.nak_round < round then begin
    let need = Fec_block.Receiver.needed block.rx in
    if need > 0 then begin
      let slot_index = max 0 (size - need) in
      let offset =
        (float_of_int slot_index *. receiver.config.slot)
        +. (Rng.float receiver.rng *. receiver.config.slot)
      in
      (match block.nak_timer with Some t -> Reactor.cancel t | None -> ());
      block.nak_timer <-
        Some (Reactor.after receiver.reactor offset (fun () ->
                  receiver_send_nak receiver ~tg_id ~round))
    end
  end

let receiver_overhear_nak receiver ~tg_id ~need ~round =
  Metrics.incr receiver.c_naks_overheard;
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    (match block.nak_timer with
    | Some timer when block.nak_round < round ->
      if need >= Fec_block.Receiver.needed block.rx then begin
        Reactor.cancel timer;
        block.nak_timer <- None;
        block.nak_round <- round;
        receiver.naks_suppressed <- receiver.naks_suppressed + 1;
        Metrics.incr receiver.c_suppressed
      end
    | Some _ | None -> ())

let receiver_handle_exhausted receiver ~tg_id =
  match Hashtbl.find_opt receiver.blocks tg_id with
  | None -> ()
  | Some block ->
    if (not block.delivered) && not block.gave_up then begin
      block.gave_up <- true;
      (match block.nak_timer with Some t -> Reactor.cancel t | None -> ());
      block.nak_timer <- None;
      receiver.on_ejected tg_id
    end

let create_receiver reactor ~socket ~sender_addr ~config ~seed ~loss ~id ~metrics
    ~on_tg_complete ~on_ejected =
  let receiver =
    {
      id;
      config;
      reactor;
      socket;
      sender_addr;
      peer_addrs = [];
      rng = Rng.create ~seed ();
      loss;
      blocks = Hashtbl.create 16;
      on_tg_complete;
      on_ejected;
      naks_sent = 0;
      naks_suppressed = 0;
      dropped = 0;
      decode_failures = 0;
      c_data = Metrics.counter metrics "rx.data";
      c_parity = Metrics.counter metrics "rx.parity";
      c_poll = Metrics.counter metrics "rx.poll";
      c_exhausted = Metrics.counter metrics "rx.exhausted";
      c_naks_tx = Metrics.counter metrics "rx.naks_tx";
      c_naks_overheard = Metrics.counter metrics "rx.naks_overheard";
      c_suppressed = Metrics.counter metrics "rx.naks_suppressed";
      c_decode_fail = Metrics.counter metrics "rx.decode_failures";
      c_loss_drop = Metrics.counter metrics "rx.loss_dropped";
      c_duplicates = Metrics.counter metrics "rx.duplicates";
    }
  in
  Reactor.on_readable reactor socket (fun () ->
      drain_socket
        ~on_decode_error:(fun () ->
          receiver.decode_failures <- receiver.decode_failures + 1;
          Metrics.incr receiver.c_decode_fail)
        socket
        (fun message from ->
          let from_sender = from = receiver.sender_addr in
          match message with
          | Header.Data { tg_id; k; index; payload } ->
            Metrics.incr receiver.c_data;
            if Rng.bernoulli receiver.rng receiver.loss then begin
              receiver.dropped <- receiver.dropped + 1;
              Metrics.incr receiver.c_loss_drop
            end
            else receiver_store receiver ~tg_id ~k ~index payload
          | Header.Parity { tg_id; k; index; round = _; payload } ->
            Metrics.incr receiver.c_parity;
            if Rng.bernoulli receiver.rng receiver.loss then begin
              receiver.dropped <- receiver.dropped + 1;
              Metrics.incr receiver.c_loss_drop
            end
            else receiver_store receiver ~tg_id ~k ~index:(k + index) payload
          | Header.Poll { tg_id; k; size; round } ->
            Metrics.incr receiver.c_poll;
            receiver_handle_poll receiver ~tg_id ~k ~size ~round
          | Header.Nak { tg_id; need; round } ->
            if not from_sender then receiver_overhear_nak receiver ~tg_id ~need ~round
          | Header.Exhausted { tg_id } ->
            Metrics.incr receiver.c_exhausted;
            receiver_handle_exhausted receiver ~tg_id));
  receiver

(* --- local session ----------------------------------------------------- *)

let run_local ?(config = default_config) ?metrics ?faults ~receivers ~loss ~seed ~data () =
  if Array.length data = 0 then invalid_arg "Udp_np.run_local: no data";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Udp_np.run_local: loss outside [0,1)";
  Array.iter
    (fun payload ->
      if Bytes.length payload <> config.payload_size then
        invalid_arg "Udp_np.run_local: payload size mismatch")
    data;
  if receivers < 1 then invalid_arg "Udp_np.run_local: need at least one receiver";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let shim = Option.map (fun spec -> Fault.create ~metrics spec) faults in
  let reactor = Reactor.create ~metrics () in
  let started = Unix.gettimeofday () in
  let tg_count = (Array.length data + config.k - 1) / config.k in

  let sender_socket = make_socket () in
  let receiver_sockets = Array.init receivers (fun _ -> make_socket ()) in
  let addr_of socket = Unix.getsockname socket in
  let sender_addr = addr_of sender_socket in
  let receiver_addrs = Array.map addr_of receiver_sockets in

  let completed_tgs = Array.make receivers 0 in
  let verified = ref true in
  let ejected = ref [] in
  let finished = ref 0 in
  let reference tg_id =
    let base = tg_id * config.k in
    let len = min config.k (Array.length data - base) in
    Array.sub data base len
  in
  let maybe_finish () =
    if !finished = receivers then
      (* Let in-flight datagrams drain, then stop the loop. *)
      ignore (Reactor.after reactor config.linger (fun () -> Reactor.stop reactor))
  in
  let rxs =
    Array.init receivers (fun id ->
        let on_tg_complete tg_id decoded =
          if not (Array.for_all2 Bytes.equal decoded (reference tg_id)) then verified := false;
          completed_tgs.(id) <- completed_tgs.(id) + 1;
          if completed_tgs.(id) = tg_count then begin
            incr finished;
            maybe_finish ()
          end
        in
        let on_ejected tg_id = ejected := (id, tg_id) :: !ejected in
        create_receiver reactor ~socket:receiver_sockets.(id) ~sender_addr ~config
          ~seed:(seed + (id * 7919)) ~loss ~id ~metrics ~on_tg_complete ~on_ejected)
  in
  (* Each receiver overhears the NAKs of all the others. *)
  Array.iteri
    (fun id receiver ->
      receiver.peer_addrs <-
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun other -> if other = id then None else Some receiver_addrs.(other))
                (Seq.init receivers Fun.id))))
    rxs;
  let group = Array.to_list receiver_addrs in
  let sender = create_sender reactor ~socket:sender_socket ~group ~config ~data ~metrics ~shim in

  Reactor.run ~deadline:(started +. config.session_timeout) reactor;

  let report =
    {
      receivers;
      transmission_groups = tg_count;
      data_tx = sender.data_tx;
      parity_tx = sender.parity_tx;
      polls = sender.polls;
      naks_sent = Array.fold_left (fun acc r -> acc + r.naks_sent) 0 rxs;
      naks_suppressed = Array.fold_left (fun acc r -> acc + r.naks_suppressed) 0 rxs;
      datagrams_dropped = Array.fold_left (fun acc r -> acc + r.dropped) 0 rxs;
      decode_failures = Array.fold_left (fun acc r -> acc + r.decode_failures) 0 rxs;
      completed =
        Array.fold_left (fun acc n -> if n = tg_count then acc + 1 else acc) 0 completed_tgs;
      verified = !verified && Array.for_all (fun n -> n = tg_count) completed_tgs;
      ejected = List.rev !ejected;
      wall_seconds = Unix.gettimeofday () -. started;
      counters = Metrics.counters metrics;
    }
  in
  Unix.close sender_socket;
  Array.iter Unix.close receiver_sockets;
  report
