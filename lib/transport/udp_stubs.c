/* Batched datagram syscalls and multicast socket options for the
   line-rate UDP transport.

   sendmmsg/recvmmsg move a whole batch of datagrams per kernel entry;
   on platforms without them (anything non-Linux here) the same entry
   points degrade to a sendto/recvfrom loop with identical semantics, so
   OCaml callers never need a platform branch — they can query
   rmc_udp_native_mmsg to report (and benchmark) which path they got.

   Retry policy, shared with the OCaml single-datagram path: EINTR is
   retried until the syscall reaches a real outcome (a signal must never
   drop a datagram), EAGAIN terminates a drain / reports a partial send,
   and ECONNREFUSED (ICMP bounce from a closed peer port) is swallowed
   on receive like the per-datagram drain always did. */

#define _GNU_SOURCE
#include <string.h>
#include <errno.h>
#include <sys/types.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/socketaddr.h>
#include <caml/unixsupport.h>

#ifdef __linux__
#define RMC_HAVE_MMSG 1
#else
#define RMC_HAVE_MMSG 0
#endif

#define RMC_MAX_BATCH 64

CAMLprim value rmc_udp_native_mmsg(value unit)
{
  (void)unit;
  return Val_bool(RMC_HAVE_MMSG);
}

/* --- batched send ---------------------------------------------------- */

/* rmc_udp_sendmmsg fd bufs lens dests count
   Sends entries [0, count) — datagram i is bufs.(i)[0 .. lens.(i)) to
   dests.(i) — in as few syscalls as the platform allows, and returns the
   number of entries actually handed to the kernel.  EINTR is retried;
   any other error stops the batch: a short return with errno EAGAIN
   means "try the rest later", and an error on the very first pending
   entry raises Unix_error so the caller can count and skip it. */
CAMLprim value rmc_udp_sendmmsg(value vfd, value vbufs, value vlens,
                                value vdests, value vcount)
{
  CAMLparam5(vfd, vbufs, vlens, vdests, vcount);
  int fd = Int_val(vfd);
  int count = Int_val(vcount);
  int sent = 0;

  if (count < 0 || count > Wosize_val(vbufs) || count > Wosize_val(vlens)
      || count > Wosize_val(vdests))
    caml_invalid_argument("rmc_udp_sendmmsg: count exceeds batch arrays");

  while (sent < count) {
    int chunk = count - sent;
    if (chunk > RMC_MAX_BATCH) chunk = RMC_MAX_BATCH;

    /* The iovecs point straight at the Bytes payloads — zero copies —
       so the runtime lock is held across the syscall: these sockets are
       non-blocking (loopback UDP sends complete immediately) and a
       released lock would let a stop-the-world minor GC move young
       buffers out from under the kernel. */
    struct sockaddr_storage addrs[RMC_MAX_BATCH];
    socklen_t addr_lens[RMC_MAX_BATCH];
    struct iovec iov[RMC_MAX_BATCH];
#if RMC_HAVE_MMSG
    struct mmsghdr msgs[RMC_MAX_BATCH];
#endif
    for (int i = 0; i < chunk; i++) {
      value buf = Field(vbufs, sent + i);
      long len = Long_val(Field(vlens, sent + i));
      if (len < 0 || len > caml_string_length(buf))
        caml_invalid_argument("rmc_udp_sendmmsg: length exceeds buffer");
      union sock_addr_union sa;
      socklen_param_type sa_len;
      caml_unix_get_sockaddr(Field(vdests, sent + i), &sa, &sa_len);
      memcpy(&addrs[i], &sa, sa_len);
      addr_lens[i] = sa_len;
      iov[i].iov_base = Bytes_val(buf);
      iov[i].iov_len = (size_t)len;
#if RMC_HAVE_MMSG
      memset(&msgs[i], 0, sizeof msgs[i]);
      msgs[i].msg_hdr.msg_iov = &iov[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = addr_lens[i];
#endif
    }

    int done;
#if RMC_HAVE_MMSG
    do done = sendmmsg(fd, msgs, chunk, 0);
    while (done < 0 && errno == EINTR);
    if (done < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (sent == 0) caml_uerror("sendmmsg", Nothing);
      break;
    }
    sent += done;
    if (done < chunk) break; /* kernel stopped early: retry later */
#else
    done = 0;
    for (; done < chunk; done++) {
      ssize_t n;
      do
        n = sendto(fd, iov[done].iov_base, iov[done].iov_len, 0,
                   (struct sockaddr *)&addrs[done], addr_lens[done]);
      while (n < 0 && errno == EINTR);
      if (n < 0) break;
    }
    sent += done;
    if (done < chunk) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (sent == 0) caml_uerror("sendto", Nothing);
      break;
    }
#endif
  }
  CAMLreturn(Val_int(sent));
}

/* --- batched receive ------------------------------------------------- */

/* rmc_udp_recvmmsg fd bufs lens froms max
   Drains up to max datagrams queued on the (non-blocking) socket in one
   syscall where the platform allows: datagram i lands in bufs.(i)
   (truncated to the buffer if oversized), its length in lens.(i), its
   source address in froms.(i).  Returns the number received; 0 means
   the socket is dry (EAGAIN).  EINTR and ECONNREFUSED retry. */
CAMLprim value rmc_udp_recvmmsg(value vfd, value vbufs, value vlens,
                                value vfroms, value vmax)
{
  CAMLparam5(vfd, vbufs, vlens, vfroms, vmax);
  CAMLlocal1(vaddr);
  int fd = Int_val(vfd);
  int max = Int_val(vmax);
  if (max < 0 || max > Wosize_val(vbufs) || max > Wosize_val(vlens)
      || max > Wosize_val(vfroms))
    caml_invalid_argument("rmc_udp_recvmmsg: max exceeds batch arrays");
  if (max > RMC_MAX_BATCH) max = RMC_MAX_BATCH;
  if (max == 0) CAMLreturn(Val_int(0));

  struct sockaddr_storage addrs[RMC_MAX_BATCH];
  int got = 0;

#if RMC_HAVE_MMSG
  struct mmsghdr msgs[RMC_MAX_BATCH];
  struct iovec iov[RMC_MAX_BATCH];
  for (int i = 0; i < max; i++) {
    memset(&msgs[i], 0, sizeof msgs[i]);
    iov[i].iov_base = Bytes_val(Field(vbufs, i));
    iov[i].iov_len = caml_string_length(Field(vbufs, i));
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof addrs[i];
  }
  do got = recvmmsg(fd, msgs, max, MSG_DONTWAIT, NULL);
  while (got < 0 && (errno == EINTR || errno == ECONNREFUSED));
  if (got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) CAMLreturn(Val_int(0));
    caml_uerror("recvmmsg", Nothing);
  }
  for (int i = 0; i < got; i++) {
    Field(vlens, i) = Val_long(msgs[i].msg_len);
    vaddr = caml_unix_alloc_sockaddr((union sock_addr_union *)&addrs[i],
                                     msgs[i].msg_hdr.msg_namelen, -1);
    Store_field(vfroms, i, vaddr);
  }
#else
  for (got = 0; got < max; got++) {
    value buf = Field(vbufs, got);
    socklen_t addr_len = sizeof addrs[0];
    ssize_t n;
    do
      n = recvfrom(fd, Bytes_val(buf), caml_string_length(buf), MSG_DONTWAIT,
                   (struct sockaddr *)&addrs[0], &addr_len);
    while (n < 0 && (errno == EINTR || errno == ECONNREFUSED));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (got == 0) caml_uerror("recvfrom", Nothing);
      break;
    }
    Field(vlens, got) = Val_long(n);
    vaddr = caml_unix_alloc_sockaddr((union sock_addr_union *)&addrs[0],
                                     addr_len, -1);
    Store_field(vfroms, got, vaddr);
  }
#endif
  CAMLreturn(Val_int(got));
}

/* --- multicast socket options ---------------------------------------- */

static struct in_addr addr_of_string(const char *what, value vaddr)
{
  struct in_addr a;
  if (inet_pton(AF_INET, String_val(vaddr), &a) != 1)
    caml_invalid_argument(what);
  return a;
}

/* rmc_udp_mcast_membership fd group iface join
   IP_ADD_MEMBERSHIP / IP_DROP_MEMBERSHIP on an IPv4 group (dotted
   strings; iface is the local interface address, e.g. "127.0.0.1"). */
CAMLprim value rmc_udp_mcast_membership(value vfd, value vgroup, value viface,
                                        value vjoin)
{
  struct ip_mreq mreq;
  mreq.imr_multiaddr = addr_of_string("mcast_membership: bad group", vgroup);
  mreq.imr_interface = addr_of_string("mcast_membership: bad iface", viface);
  int op = Bool_val(vjoin) ? IP_ADD_MEMBERSHIP : IP_DROP_MEMBERSHIP;
  if (setsockopt(Int_val(vfd), IPPROTO_IP, op, &mreq, sizeof mreq) < 0)
    caml_uerror("setsockopt(IP_MEMBERSHIP)", Nothing);
  return Val_unit;
}

/* rmc_udp_mcast_if fd iface — IP_MULTICAST_IF: which interface this
   socket's multicast transmissions leave through. */
CAMLprim value rmc_udp_mcast_if(value vfd, value viface)
{
  struct in_addr a = addr_of_string("mcast_if: bad iface", viface);
  if (setsockopt(Int_val(vfd), IPPROTO_IP, IP_MULTICAST_IF, &a, sizeof a) < 0)
    caml_uerror("setsockopt(IP_MULTICAST_IF)", Nothing);
  return Val_unit;
}

/* rmc_udp_mcast_loop fd on — IP_MULTICAST_LOOP: whether this socket's
   multicast transmissions are delivered to members on the local host
   (required for the loopback sessions every test runs). */
CAMLprim value rmc_udp_mcast_loop(value vfd, value von)
{
  unsigned char on = Bool_val(von) ? 1 : 0;
  if (setsockopt(Int_val(vfd), IPPROTO_IP, IP_MULTICAST_LOOP, &on, sizeof on) < 0)
    caml_uerror("setsockopt(IP_MULTICAST_LOOP)", Nothing);
  return Val_unit;
}

/* rmc_udp_mcast_ttl fd ttl — IP_MULTICAST_TTL (1 = link-local). */
CAMLprim value rmc_udp_mcast_ttl(value vfd, value vttl)
{
  unsigned char ttl = (unsigned char)Int_val(vttl);
  if (setsockopt(Int_val(vfd), IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof ttl) < 0)
    caml_uerror("setsockopt(IP_MULTICAST_TTL)", Nothing);
  return Val_unit;
}
