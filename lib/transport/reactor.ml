module Event_queue = Rmc_sim.Event_queue
module Metrics = Rmc_obs.Metrics

type timer = { mutable cancelled : bool; action : unit -> unit; owner : t }

and t = {
  timers : timer Event_queue.t;
  handlers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  max_fds : int;
  mutable stopped : bool;
  mutable cancelled_pending : int;  (* cancelled timers still in the heap *)
  c_fires : Metrics.counter option;
  c_cancels : Metrics.counter option;
  c_purges : Metrics.counter option;
}

(* Below this many cancelled entries, purging costs more than it saves. *)
let purge_threshold = 64

(* [Unix.select] silently corrupts (or the libc aborts) beyond FD_SETSIZE;
   refuse loudly well before that instead of flaking at scale. *)
let fd_setsize = 1024

let create ?metrics ?(max_fds = fd_setsize) () =
  let counter name = Option.map (fun m -> Metrics.counter m name) metrics in
  if max_fds < 1 || max_fds > fd_setsize then
    invalid_arg
      (Printf.sprintf "Reactor.create: max_fds %d outside 1..%d (FD_SETSIZE)" max_fds
         fd_setsize);
  {
    timers = Event_queue.create ();
    handlers = Hashtbl.create 8;
    max_fds;
    stopped = false;
    cancelled_pending = 0;
    c_fires = counter "reactor.timer_fires";
    c_cancels = counter "reactor.timers_cancelled";
    c_purges = counter "reactor.heap_purges";
  }

let bump = function Some c -> Metrics.incr c | None -> ()

let now _ = Unix.gettimeofday ()

let after t delay action =
  let timer = { cancelled = false; action; owner = t } in
  let fire_at = Unix.gettimeofday () +. Float.max 0.0 delay in
  Event_queue.add t.timers ~time:fire_at timer;
  timer

(* Pop cancelled timers sitting at the top of the heap — they cost O(log n)
   each here versus rotting until their fire time. *)
let rec drop_cancelled_head t =
  match Event_queue.peek t.timers with
  | Some (_, timer) when timer.cancelled ->
    ignore (Event_queue.pop t.timers);
    t.cancelled_pending <- t.cancelled_pending - 1;
    drop_cancelled_head t
  | Some _ | None -> ()

(* When cancelled entries dominate the heap, rebuild it without them so a
   long-lived session that arms and cancels per-TG timers stays bounded. *)
let maybe_purge t =
  let live = Event_queue.size t.timers - t.cancelled_pending in
  if t.cancelled_pending >= purge_threshold && t.cancelled_pending > live then begin
    let removed = Event_queue.filter_in_place t.timers (fun timer -> not timer.cancelled) in
    t.cancelled_pending <- t.cancelled_pending - removed;
    bump t.c_purges
  end

let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    let t = timer.owner in
    t.cancelled_pending <- t.cancelled_pending + 1;
    bump t.c_cancels;
    maybe_purge t
  end

let cancelled timer = timer.cancelled

let pending_timers t = Event_queue.size t.timers

let on_readable t fd callback =
  if (not (Hashtbl.mem t.handlers fd)) && Hashtbl.length t.handlers >= t.max_fds then
    failwith
      (Printf.sprintf
         "Reactor.on_readable: %d descriptors already registered (max_fds %d; \
          select-based loop cannot watch more — shard the run across reactors)"
         (Hashtbl.length t.handlers) t.max_fds);
  Hashtbl.replace t.handlers fd callback
let remove t fd = Hashtbl.remove t.handlers fd
let stop t = t.stopped <- true

let fire_due_timers t =
  let rec loop () =
    drop_cancelled_head t;
    match Event_queue.peek_time t.timers with
    | Some time when time <= Unix.gettimeofday () ->
      (match Event_queue.pop t.timers with
      | Some (_, timer) ->
        if not timer.cancelled then begin
          bump t.c_fires;
          timer.action ()
        end
        else t.cancelled_pending <- t.cancelled_pending - 1
      | None -> ());
      if not t.stopped then loop ()
    | Some _ | None -> ()
  in
  loop ()

let run ?(deadline = Float.max_float) t =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    fire_due_timers t;
    if t.stopped then continue := false
    else begin
      let current = Unix.gettimeofday () in
      if current >= deadline then continue := false
      else begin
        let idle_fds = Hashtbl.length t.handlers = 0 in
        drop_cancelled_head t;
        let next_timer = Event_queue.peek_time t.timers in
        match (next_timer, idle_fds) with
        | None, true -> continue := false
        | _ ->
          let timeout =
            let until_deadline = deadline -. current in
            let until_timer =
              match next_timer with
              | Some time -> Float.max 0.0 (time -. current)
              | None -> 0.250
            in
            Float.min 0.250 (Float.min until_deadline until_timer)
          in
          let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.handlers [] in
          let readable, _, _ =
            try Unix.select fds [] [] timeout
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.handlers fd with
              | Some callback when not t.stopped -> callback ()
              | Some _ | None -> ())
            readable
      end
    end
  done
