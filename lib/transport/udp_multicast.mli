(** True IPv4 multicast sockets, scoped to the loopback interface.

    The unicast shim emulates multicast with one [sendto] per group
    member; these sockets make the kernel do that fan-out: one send to a
    239.0.0.0/8 group is delivered to every local member.  Everything is
    pinned to loopback with TTL 1 — [IP_MULTICAST_IF] = 127.0.0.1 on
    senders, [IP_MULTICAST_LOOP] on (required for same-host delivery),
    receivers bound to the group port with [SO_REUSEADDR] +
    [SO_REUSEPORT] and joined via [IP_ADD_MEMBERSHIP] — so sessions never
    leak datagrams off-host.

    Not every environment routes multicast over loopback (minimal
    containers, exotic namespaces); gate on {!is_available}, which runs a
    one-datagram kernel round-trip probe once and caches the verdict. *)

type group = { address : string; port : int }
(** An administratively-scoped (239.x.y.z) IPv4 group. *)

val group_of_seed : int -> group
(** Derive a group and port from a seed, mixed with the process id:
    distinct runs (and concurrent test processes) land on distinct
    groups, so their datagrams never cross. *)

val group_addr : group -> Unix.sockaddr
(** The [ADDR_INET] destination sends to. *)

val sender_socket : unit -> Unix.file_descr
(** A non-blocking socket configured to transmit to groups over
    loopback (multicast interface, loop, TTL 1); bound to an ephemeral
    loopback port, so replies can be unicast back to it. *)

val receiver_socket : group -> Unix.file_descr
(** A non-blocking socket bound to the group's port (reusable, so every
    receiver in the process binds it) and joined to the group on
    loopback.
    @raise Unix.Unix_error when the kernel refuses the membership. *)

val join : Unix.file_descr -> group -> unit
(** [IP_ADD_MEMBERSHIP] on the loopback interface. *)

val leave : Unix.file_descr -> group -> unit

val is_available : unit -> bool
(** Whether multicast actually round-trips over loopback here — one
    probe datagram through a throwaway group, result cached.  The
    multicast transport (and its tests) bail out cleanly when false. *)
