(** Minimal real-time event loop for the UDP transport.

    The mirror image of {!Rmc_sim.Engine}: the same cancellable-timer API,
    but driven by the wall clock and [Unix.select] instead of a virtual
    clock.  Single-threaded; callbacks run on the loop.  Intended for the
    loopback NP binding and small tools — not a general-purpose runtime. *)

type t

val create : ?metrics:Rmc_obs.Metrics.t -> ?max_fds:int -> unit -> t
(** With [metrics], the loop counts [reactor.timer_fires],
    [reactor.timers_cancelled] and [reactor.heap_purges].

    [max_fds] (default 1024 = FD_SETSIZE) caps how many descriptors may
    be registered at once: a [select]-based loop breaks silently past
    FD_SETSIZE, so {!on_readable} fails loudly at the cap instead — runs
    that need more sockets shard across several reactors.
    @raise Invalid_argument if [max_fds] is outside 1..1024. *)

val now : t -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

type timer

val after : t -> float -> (unit -> unit) -> timer
(** Schedule a callback [delay] seconds from now (clamped to >= 0). *)

val cancel : timer -> unit
(** Cancelled timers never fire and are dropped from the event heap
    eagerly: any cancelled entry reaching the top of the heap is popped
    immediately, and when cancelled entries outnumber live ones (beyond a
    small threshold) the heap is rebuilt without them — so a long-lived
    session that arms and cancels timers per TG holds O(live) heap
    entries, not O(ever armed). *)

val cancelled : timer -> bool

val pending_timers : t -> int
(** Entries currently in the timer heap, cancelled stragglers included —
    the probe the heap-leak regression test watches. *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register a callback fired whenever the descriptor is readable.  One
    callback per descriptor; registering again replaces it.
    @raise Failure when registering a new descriptor would exceed the
    loop's [max_fds] cap. *)

val remove : t -> Unix.file_descr -> unit

val stop : t -> unit
(** Make {!run} return after the current dispatch. *)

val run : ?deadline:float -> t -> unit
(** Dispatch timers and descriptor events until {!stop} is called, the
    wall-clock [deadline] (absolute, seconds) passes, or there is nothing
    left to wait for (no timers and no descriptors). *)
