(** Batched datagram I/O: one syscall per flush or drain.

    Thin, allocation-free wrappers over the [sendmmsg]/[recvmmsg] C stubs
    ({!native} tells you whether the platform really has them — elsewhere
    the same entry points fall back to a [sendto]/[recvfrom] loop with
    identical semantics).  The driver accumulates a tick's datagrams into
    a {!send} batch and {!flush}es it in one kernel entry; each socket
    owns a {!recv} ring whose {!recv_batch} drains up to {!max_batch}
    queued datagrams per syscall.

    Syscall counts are returned from every operation so callers can
    maintain the [udp.syscalls_tx]/[udp.syscalls_rx] counters the
    packet-rate bench gates on. *)

val native : bool
(** Whether the stubs use real [sendmmsg]/[recvmmsg] (Linux) rather than
    the portable single-syscall-per-datagram fallback. *)

val max_batch : int
(** Largest number of datagrams one kernel entry can carry (64).  Larger
    {!send} batches are flushed in ceil(n/{!max_batch}) syscalls. *)

(** {2 Send batches} *)

type send
(** A growable batch of (buffer, length, destination) entries.  Buffers
    are {e borrowed}: the caller must keep each buffer alive and
    unmodified until the {!flush} that carries it returns (the flush
    reads straight out of them — no copy). *)

val send_create : ?capacity:int -> unit -> send
(** Initial capacity defaults to {!max_batch}; the batch grows on demand
    (amortized, never on the per-datagram path). *)

val send_length : send -> int
(** Entries currently pending. *)

val add : send -> Bytes.t -> len:int -> Unix.sockaddr -> unit
(** Append one datagram: the first [len] bytes of the buffer, to go to
    the given destination.  The same buffer may appear in several entries
    (a fan-out reuses one sealed datagram for every destination). *)

type flush_result = {
  sent : int;  (** datagrams handed to the kernel *)
  errors : int;  (** entries that failed and were dropped (counted, like
                     the per-datagram path counts [udp.tx_errors]) *)
  syscalls : int;  (** kernel entries used *)
}

val flush : send -> Unix.file_descr -> flush_result
(** Send every pending entry, in order, in as few syscalls as possible;
    the batch is empty afterwards.  EINTR is retried until the datagram
    reaches a real outcome; an entry the kernel refuses (EAGAIN under
    extreme pressure behaves like network loss, as in the per-datagram
    path) is counted in [errors] and skipped, never silently dropped or
    retried forever. *)

(** {2 Receive rings} *)

type recv
(** A fixed set of reusable receive slots (buffer + length + source
    address), filled by {!recv_batch} and overwritten by the next call —
    decode what you need before draining again. *)

val recv_create : ?slots:int -> buf_size:int -> unit -> recv
(** [slots] (default 8, capped at {!max_batch}) buffers of [buf_size]
    bytes each — allocated once, for the socket's lifetime. *)

val slots : recv -> int
(** The ring's slot count.  A {!recv_batch} that fills every slot may
    have left more datagrams queued; fewer means the socket is dry. *)

val recv_batch : recv -> Unix.file_descr -> int
(** Drain up to [slots] datagrams queued on the (non-blocking) socket in
    one syscall.  Returns the number received; 0 means the socket is dry.
    Datagrams larger than [buf_size] are truncated (and will then fail
    CRC validation downstream, like any corrupted datagram).  EINTR and
    ECONNREFUSED (ICMP bounce from a closed peer) are absorbed. *)

val slot : recv -> int -> Bytes.t
(** The bytes of slot [i] (valid for indices below the last
    {!recv_batch} result, until the next call). *)

val slot_len : recv -> int -> int
val slot_from : recv -> int -> Unix.sockaddr
