(* True IPv4 multicast sockets over the loopback interface.

   One multicast send delivers a datagram to every joined member on the
   host — the fan-out the unicast shim pays per destination happens once
   in the kernel.  All groups here are administratively scoped
   (239.0.0.0/8) and pinned to the loopback interface with TTL 1, so a
   test run never leaks datagrams onto a real network. *)

external mcast_membership_stub : Unix.file_descr -> string -> string -> bool -> unit
  = "rmc_udp_mcast_membership"
external mcast_if_stub : Unix.file_descr -> string -> unit = "rmc_udp_mcast_if"
external mcast_loop_stub : Unix.file_descr -> bool -> unit = "rmc_udp_mcast_loop"
external mcast_ttl_stub : Unix.file_descr -> int -> unit = "rmc_udp_mcast_ttl"

let loopback = "127.0.0.1"

type group = { address : string; port : int }

let group_addr { address; port } =
  Unix.ADDR_INET (Unix.inet_addr_of_string address, port)

(* Derive a group from a seed: distinct runs (and concurrent test
   processes, via the pid) land on distinct (group, port) pairs, so one
   run's datagrams never reach another's sockets. *)
let group_of_seed seed =
  let mix = (seed * 2654435761) lxor (Unix.getpid () * 40503) in
  let b2 = 1 + ((mix lsr 8) land 0xFE) (* avoid .0 and .255 *)
  and b3 = 1 + (mix land 0xFE) in
  let port = 20000 + ((mix lsr 16) land 0x7FFF) in
  { address = Printf.sprintf "239.255.%d.%d" b2 b3; port }

let join socket group = mcast_membership_stub socket group.address loopback true
let leave socket group = mcast_membership_stub socket group.address loopback false

(* A socket that transmits to [group]: routed out the loopback
   interface, looped back to local members, never past the link. *)
let sender_socket () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try
     Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
     mcast_if_stub socket loopback;
     mcast_loop_stub socket true;
     mcast_ttl_stub socket 1;
     Unix.set_nonblock socket
   with e ->
     Unix.close socket;
     raise e);
  socket

(* A socket that receives [group]'s datagrams: bound to the group port
   with SO_REUSEADDR + SO_REUSEPORT so every receiver in the process can
   bind it (multicast is delivered to all bound members, not
   load-balanced), then joined on loopback. *)
let receiver_socket group =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.setsockopt socket Unix.SO_REUSEPORT true;
     Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_any, group.port));
     join socket group;
     Unix.set_nonblock socket
   with e ->
     Unix.close socket;
     raise e);
  socket

(* Self-test: join a probe group, send one datagram through the kernel,
   see it come back.  Containers and exotic network namespaces sometimes
   lack multicast on loopback; callers gate the multicast transport (and
   its tests) on this probe instead of failing mid-session. *)
let probe () =
  match
    let group = group_of_seed 0x6d636173 (* "mcas" *) in
    let tx = sender_socket () in
    let rx =
      try receiver_socket group
      with e ->
        Unix.close tx;
        raise e
    in
    Fun.protect
      ~finally:(fun () ->
        Unix.close tx;
        Unix.close rx)
      (fun () ->
        let payload = Bytes.of_string "rmc-mcast-probe" in
        let len = Bytes.length payload in
        let _ = Unix.sendto tx payload 0 len [] (group_addr group) in
        let deadline = Unix.gettimeofday () +. 0.5 in
        let scratch = Bytes.create 64 in
        let rec wait () =
          match Unix.select [ rx ] [] [] 0.05 with
          | [], _, _ -> Unix.gettimeofday () < deadline && wait ()
          | _ ->
            (match Unix.recvfrom rx scratch 0 64 [] with
            | n, _ -> n = len && Bytes.equal (Bytes.sub scratch 0 n) payload
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              Unix.gettimeofday () < deadline && wait ())
        in
        wait ())
  with
  | ok -> ok
  | exception _ -> false

let available = lazy (probe ())
let is_available () = Lazy.force available
