(** Protocol NP over real UDP sockets.

    The same state machine as {!Rmc_proto.Np}, bound to the wire format of
    {!Rmc_wire.Header} and driven by the {!Reactor} wall-clock event loop.
    Multicast is emulated by unicast fan-out (one [sendto] per group
    member), which preserves every protocol property that matters here —
    NAK suppression in particular: receivers really do overhear each
    other's NAK datagrams and cancel their timers.

    {!run_local} wires a full session over the loopback interface: one
    sender and R receivers, each on its own ephemeral UDP port, with
    Bernoulli loss injected on reception of data/parity datagrams (control
    datagrams are spared, matching the §5 analysis assumptions).  This is
    the path the integration tests and [examples/udp_demo.ml] exercise:
    actual datagrams through the kernel's network stack. *)

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;  (** sender pacing, seconds between packets *)
  slot : float;  (** NAK slot size *)
  linger : float;  (** quiet period after completion before shutdown *)
  session_timeout : float;  (** hard wall-clock cap for {!run_local} *)
}

val default_config : config
(** k = 8, h = 16, 512-byte payloads, 0.5 ms pacing, 20 ms slots, 5 s cap
    — sized for loopback sessions that finish in well under a second. *)

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;  (** NAK datagrams actually sent by receivers *)
  naks_suppressed : int;
  datagrams_dropped : int;  (** by the injected reception loss *)
  decode_failures : int;  (** datagrams the receivers could not parse *)
  completed : int;  (** receivers that decoded every TG *)
  verified : bool;  (** and every decoded payload matched *)
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;  (** final {!Rmc_obs.Metrics} dump *)
}

val run_local :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?faults:Rmc_obs.Fault.spec ->
  receivers:int ->
  loss:float ->
  seed:int ->
  data:Bytes.t array ->
  unit ->
  report
(** Run a complete session on 127.0.0.1.

    [metrics] supplies the counter registry (a private one is created when
    absent); the final state is returned in [report.counters] either way.
    Per-role counters: sender [tx.data]/[tx.parity]/[tx.poll]/
    [tx.exhausted], [sender.naks_rx], [sender.repair_rounds]; receivers
    [rx.data]/[rx.parity]/[rx.poll]/[rx.exhausted], [rx.naks_tx],
    [rx.naks_overheard], [rx.naks_suppressed], [rx.decode_failures],
    [rx.loss_dropped], [rx.duplicates]; plus the reactor and fault-shim
    counters.

    [faults] arms an {!Rmc_obs.Fault} shim at the sender's datagram
    boundary: every data/parity datagram of the unicast fan-out passes
    through it per destination, so each receiver sees an independent
    drop/duplicate/reorder/delay/corrupt pattern.  Control datagrams are
    spared, matching the reception-loss model.  Corrupted datagrams are
    caught by the header CRC on reception and show up as
    [rx.decode_failures].

    @raise Invalid_argument on empty data, bad payload sizes, or
    [loss] outside [0, 1). *)
