(** Protocol NP over real UDP sockets.

    The same state machine as {!Rmc_proto.Np}, bound to the wire format of
    {!Rmc_wire.Header} and driven by the {!Reactor} wall-clock event loop.
    Multicast is emulated by unicast fan-out (one [sendto] per group
    member), which preserves every protocol property that matters here —
    NAK suppression in particular: receivers really do overhear each
    other's NAK datagrams and cancel their timers.

    {!run_local} wires a full session over the loopback interface: one
    sender and R receivers, each on its own ephemeral UDP port, with
    Bernoulli loss injected on reception of data/parity datagrams (control
    datagrams are spared, matching the §5 analysis assumptions).  This is
    the path the integration tests and [examples/udp_demo.ml] exercise:
    actual datagrams through the kernel's network stack.

    {!run_multi} multiplexes N independent sessions over {e one} reactor
    and one shared sender socket: each session's datagrams carry its
    session id in the upper 16 bits of the wire [tg_id] (no wire-format
    change; receivers demux for free because blocks are keyed by the full
    id), NAKs coming back on the shared socket are routed to the owning
    session's sender, and all sessions share the memoized {!Rmc_rse}
    codec cache.  Per-session sender metrics live under a
    [session.<sid>.] scope of the shared registry. *)

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;  (** sender pacing, seconds between packets *)
  slot : float;  (** NAK slot size *)
  linger : float;  (** quiet period after completion before shutdown *)
  session_timeout : float;  (** hard wall-clock cap for a run *)
}

val default_config : config
(** k = 8, h = 16, 512-byte payloads, 0.5 ms pacing, 20 ms slots, 5 s cap
    — sized for loopback sessions that finish in well under a second. *)

val config_of_profile :
  ?linger:float -> ?session_timeout:float -> Rmc_core.Profile.t -> config
(** Derive the UDP config from the user-facing profile.  [linger] and
    [session_timeout] are transport-only knobs (defaults from
    {!default_config}); the profile's [pre_encode] flag is dropped — the
    UDP sender always encodes parities on demand. *)

val profile_of_config : config -> Rmc_core.Profile.t
(** Forget [linger] and [session_timeout]; [pre_encode] is [false]. *)

val wire_tg : sid:int -> int -> (int, Rmc_core.Error.t) result
(** [wire_tg ~sid local] packs session id [sid] (upper 16 bits) and
    session-local TG index [local] (lower 16 bits) into the 32-bit wire
    [tg_id].  Returns [Error] (context ["Udp_np.wire_tg"]) when either
    component falls outside [\[0, 65535\]] — the guard the multi-session
    demux relies on. *)

val sid_of_wire : int -> int
(** Upper 16 bits of a wire [tg_id], masked to 16 bits. *)

val local_of_wire : int -> int
(** Lower 16 bits of a wire [tg_id]. *)

val max_datagram : int
(** Upper bound on a datagram this driver sends or receives (65536);
    [payload_size] may not exceed [max_datagram - Header.header_size]. *)

val drain :
  ?on_decode_error:(unit -> unit) ->
  scratch:Bytes.t ->
  Unix.file_descr ->
  (Rmc_wire.Header.message -> Unix.sockaddr -> unit) ->
  unit
(** [drain ~scratch socket handle] reads every datagram queued on the
    (non-blocking) [socket], decoding each in place with
    {!Rmc_wire.Header.decode_slice} and calling [handle message from].
    [scratch] is the caller's reusable recv buffer (at least
    {!max_datagram} bytes): each datagram is overwritten by the next, and
    the only per-datagram allocations are the decoded message and its
    payload copy.  Undecodable datagrams invoke [on_decode_error] and are
    skipped.  Exposed for the allocation-regression tests; the drivers
    call it through their per-socket scratch. *)

val receiver_machine_seed : seed:int -> id:int -> int
(** Seed of receiver [id]'s damping RNG, derived from the run [seed].
    Distinct from the same receiver's loss RNG, so that a capture's
    [rxseed.<id>] meta fully determines the machine's randomness while
    reception loss stays a driver concern.  Exposed for the
    driver-equivalence tests, which must seed the sim flow identically. *)

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;  (** NAK datagrams actually sent by receivers *)
  naks_suppressed : int;
  datagrams_dropped : int;  (** by the injected reception loss *)
  decode_failures : int;  (** datagrams the receivers could not parse *)
  completed : int;  (** receivers that decoded every TG *)
  verified : bool;  (** and every decoded payload matched *)
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;  (** final {!Rmc_obs.Metrics} dump *)
}

type session_report = {
  session : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  completed : int;  (** receivers that completed every TG of this session *)
  verified : bool;  (** completed by all receivers, every payload matched *)
  ejected : (int * int) list;  (** (receiver, session-local tg) pairs *)
}

type multi_report = {
  receivers : int;
  session_reports : session_report array;  (** indexed by session id *)
  naks_sent : int;  (** across all sessions (receiver-side totals) *)
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  all_verified : bool;
  wall_seconds : float;
  counters : (string * int) list;
}

val run_local :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  receivers:int ->
  loss:float ->
  seed:int ->
  data:Bytes.t array ->
  unit ->
  (report, Rmc_core.Error.t) result
(** Run a complete session on 127.0.0.1.

    [trace] receives driver events ([udp.tx_error], fault-shim events) in
    addition to the protocol traces the machines emit.

    [recorder] captures every sans-IO event consumed and effect emitted by
    the sender and receiver machines (actors ["s0"], ["r<id>"]), plus the
    meta header {!Rmc_proto.Np_replay.replay} needs — save it with
    {!Rmc_obs.Recorder.save} and the run can be re-executed and checked
    offline, byte-for-byte.

    [metrics] supplies the counter registry (a private one is created when
    absent); the final state is returned in [report.counters] either way.
    Per-role counters: sender [tx.data]/[tx.parity]/[tx.poll]/
    [tx.exhausted], [sender.naks_rx], [sender.repair_rounds]; receivers
    [rx.data]/[rx.parity]/[rx.poll]/[rx.exhausted], [rx.naks_tx],
    [rx.naks_overheard], [rx.naks_suppressed], [rx.decode_failures],
    [rx.loss_dropped], [rx.duplicates]; plus the reactor and fault-shim
    counters.

    [faults] arms an {!Rmc_obs.Fault} shim at the sender's datagram
    boundary: every data/parity datagram of the unicast fan-out passes
    through it per destination, so each receiver sees an independent
    drop/duplicate/reorder/delay/corrupt pattern.  Control datagrams are
    spared, matching the reception-loss model.  Corrupted datagrams are
    caught by the header CRC on reception and show up as
    [rx.decode_failures].

    Returns [Error] (context ["Udp_np.run_local"]) on empty data, bad
    payload sizes, [loss] outside [0, 1), or no receivers. *)

val run_local_exn :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  receivers:int ->
  loss:float ->
  seed:int ->
  data:Bytes.t array ->
  unit ->
  report
(** @raise Invalid_argument where {!run_local} would return [Error]. *)

val run_multi :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  (multi_report, Rmc_core.Error.t) result
(** Run [Array.length sessions] concurrent sessions (element [sid] is that
    session's payload array) over one reactor, one shared sender socket and
    [receivers] shared receiver sockets.  Every session must finish —
    completion, verification and ejections are tracked per (receiver,
    session) pair — before the linger/shutdown sequence starts.

    Per-session sender counters are recorded under [session.<sid>.]
    scopes of [metrics]; receiver counters are shared (receivers serve all
    sessions on one socket).

    Returns [Error] (context ["Udp_np.run_multi"]) on the same conditions
    as {!run_local}, plus more than 65536 sessions or more than 65536 TGs
    in one session (the wire demux packs sid and tg into 16 bits each). *)

val run_multi_exn :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  multi_report
(** @raise Invalid_argument where {!run_multi} would return [Error]. *)
