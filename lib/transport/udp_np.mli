(** Protocol NP over real UDP sockets.

    The same state machine as {!Rmc_proto.Np}, bound to the wire format of
    {!Rmc_wire.Header} and driven by the {!Reactor} wall-clock event loop.

    Two transports are available.  [`Unicast] (the default) emulates
    multicast by fan-out — each datagram goes once to every group member —
    which preserves every protocol property that matters here, NAK
    suppression in particular: receivers really do overhear each other's
    NAK datagrams and cancel their timers.  [`Multicast] uses real
    [IP_ADD_MEMBERSHIP] group sockets on the loopback interface: the
    sender transmits each datagram {e once} to a 239.255.x.y group and the
    kernel fans it out to every joined member (gate on
    {!Udp_multicast.is_available} — not every environment routes multicast
    over loopback).

    The datapath is batched end to end: a sender tick's messages coalesce
    back to back into pooled {e frames} (the wire format is
    self-delimiting, see {!Rmc_wire.Header.frame_length}) and the tick's
    (frame, destination) pairs go to the kernel through one
    [sendmmsg]-backed flush; each socket drains through a [recvmmsg]
    receive ring.  On platforms without those syscalls the same code runs
    over a portable one-datagram-per-syscall fallback
    ({!Udp_batch.native}).  [udp.syscalls_tx]/[udp.syscalls_rx] count
    every kernel entry, and the [udp.syscalls_per_datagram] gauge is the
    honest quotient the packet-rate bench gates on.

    {!run_local} wires a full session over the loopback interface: one
    sender and R receivers, each on its own ephemeral UDP port, with
    Bernoulli loss injected on reception of data/parity datagrams (control
    datagrams are spared, matching the §5 analysis assumptions).  This is
    the path the integration tests and [examples/udp_demo.ml] exercise:
    actual datagrams through the kernel's network stack.

    {!run_multi} multiplexes N independent sessions over {e one} reactor
    and one shared sender socket: each session's datagrams carry its
    session id in the upper 16 bits of the wire [tg_id] (no wire-format
    change; receivers demux for free because blocks are keyed by the full
    id), NAKs coming back on the shared socket are routed to the owning
    session's sender, and all sessions share the memoized {!Rmc_rse}
    codec cache.  Per-session sender metrics live under a
    [session.<sid>.] scope of the shared registry.

    {!run_sharded} partitions the sessions of a {!run_multi}-style run
    across OCaml domains — one reactor, one socket set and one buffer pool
    per shard, so no mutable transport state crosses a domain boundary;
    only the {!Rmc_obs.Metrics} registry (atomic counters) and the
    memoized codec cache (mutex) are shared.  Session ids stay global:
    shard s's wire sids are its slice of [0, N), and the merged report is
    indexed exactly like {!run_multi}'s. *)

type transport = [ `Unicast | `Multicast ]

type config = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  spacing : float;  (** sender pacing, seconds between packets *)
  slot : float;  (** NAK slot size *)
  linger : float;  (** quiet period after completion before shutdown *)
  session_timeout : float;  (** hard wall-clock cap for a run *)
  codec : Rmc_rse.Codec.kind;  (** erasure codec for repair packets *)
  controller : Rmc_core.Profile.controller;
      (** redundancy control plane; [`Static] (the default) reproduces the
          pre-control-plane behaviour bit-exactly *)
}

val default_config : config
(** k = 8, h = 16, 512-byte payloads, 0.5 ms pacing, 20 ms slots, 5 s cap
    — sized for loopback sessions that finish in well under a second. *)

val config_of_profile :
  ?linger:float -> ?session_timeout:float -> Rmc_core.Profile.t -> config
(** Derive the UDP config from the user-facing profile.  [linger] and
    [session_timeout] are transport-only knobs (defaults from
    {!default_config}); the profile's [pre_encode] flag is dropped — the
    UDP sender always encodes parities on demand. *)

val profile_of_config : config -> Rmc_core.Profile.t
(** Forget [linger] and [session_timeout]; [pre_encode] is [false]. *)

val wire_tg : sid:int -> int -> (int, Rmc_core.Error.t) result
(** [wire_tg ~sid local] packs session id [sid] (upper 16 bits) and
    session-local TG index [local] (lower 16 bits) into the 32-bit wire
    [tg_id].  Returns [Error] (context ["Udp_np.wire_tg"]) when either
    component falls outside [\[0, 65535\]] — the guard the multi-session
    demux relies on. *)

val sid_of_wire : int -> int
(** Upper 16 bits of a wire [tg_id], masked to 16 bits. *)

val local_of_wire : int -> int
(** Lower 16 bits of a wire [tg_id]. *)

val max_datagram : int
(** Upper bound on a datagram this driver sends or receives (65536);
    [payload_size] may not exceed [max_datagram - Header.header_size]. *)

val max_frame : int
(** The largest UDP payload the kernel accepts in one datagram (65507);
    the budget a coalesced frame is packed up to. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run a syscall thunk, retrying as long as it raises
    [Unix.Unix_error (EINTR, _, _)] — a signal landing mid-syscall must
    never surface as a transport error or a dropped datagram.  Every
    send/recv in this driver goes through it (the C stubs retry EINTR
    in-kernel the same way); exposed for the regression test. *)

val drain :
  ?on_decode_error:(unit -> unit) ->
  scratch:Bytes.t ->
  Unix.file_descr ->
  (Rmc_wire.Header.message -> Unix.sockaddr -> unit) ->
  unit
(** [drain ~scratch socket handle] reads every datagram queued on the
    (non-blocking) [socket] and walks each as a coalesced frame: every
    message is decoded in place with {!Rmc_wire.Header.decode_slice} and
    passed to [handle message from].  [scratch] is the caller's reusable
    recv buffer (at least {!max_datagram} bytes): each datagram is
    overwritten by the next, and the only per-message allocations are the
    decoded message and its payload copy.  A message that cannot be
    delimited ends that datagram's walk ([on_decode_error] once); one that
    delimits but fails validation (corrupted CRC) invokes
    [on_decode_error] and the walk continues.  Exposed for the
    allocation-regression and framing tests; the drivers drain through
    per-socket [recvmmsg] rings with the same framing semantics. *)

val receiver_machine_seed : seed:int -> id:int -> int
(** Seed of receiver [id]'s damping RNG, derived from the run [seed].
    Distinct from the same receiver's loss RNG, so that a capture's
    [rxseed.<id>] meta fully determines the machine's randomness while
    reception loss stays a driver concern.  Exposed for the
    driver-equivalence tests, which must seed the sim flow identically. *)

type report = {
  receivers : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  naks_sent : int;  (** NAK datagrams actually sent by receivers *)
  naks_suppressed : int;
  datagrams_dropped : int;  (** by the injected reception loss *)
  decode_failures : int;  (** datagrams the receivers could not parse *)
  completed : int;  (** receivers that decoded every TG *)
  verified : bool;  (** and every decoded payload matched *)
  ejected : (int * int) list;
  wall_seconds : float;
  counters : (string * int) list;  (** final {!Rmc_obs.Metrics} dump *)
}

type session_report = {
  session : int;
  transmission_groups : int;
  data_tx : int;
  parity_tx : int;
  polls : int;
  completed : int;  (** receivers that completed every TG of this session *)
  verified : bool;  (** completed by all receivers, every payload matched *)
  ejected : (int * int) list;  (** (receiver, session-local tg) pairs *)
}

type multi_report = {
  receivers : int;
  session_reports : session_report array;  (** indexed by session id *)
  naks_sent : int;  (** across all sessions (receiver-side totals) *)
  naks_suppressed : int;
  datagrams_dropped : int;
  decode_failures : int;
  all_verified : bool;
  wall_seconds : float;
  counters : (string * int) list;
}

val run_local :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  ?transport:transport ->
  receivers:int ->
  loss:float ->
  seed:int ->
  data:Bytes.t array ->
  unit ->
  (report, Rmc_core.Error.t) result
(** Run a complete session on 127.0.0.1.

    [transport] selects the socket layer (default [`Unicast]); with
    [`Multicast] the group is derived from [seed] (see
    {!Udp_multicast.group_of_seed}) and each receiver additionally owns a
    small unicast socket its NAKs leave from, so peers can tell NAK
    sources apart on the shared group port.

    [trace] receives driver events ([udp.tx_error], fault-shim events) in
    addition to the protocol traces the machines emit.

    [recorder] captures every sans-IO event consumed and effect emitted by
    the sender and receiver machines (actors ["s0"], ["r<id>"]), plus the
    meta header {!Rmc_proto.Np_replay.replay} needs — save it with
    {!Rmc_obs.Recorder.save} and the run can be re-executed and checked
    offline, byte-for-byte.

    [metrics] supplies the counter registry (a private one is created when
    absent); the final state is returned in [report.counters] either way.
    Per-role counters: sender [tx.data]/[tx.parity]/[tx.poll]/
    [tx.exhausted], [sender.naks_rx], [sender.repair_rounds]; receivers
    [rx.data]/[rx.parity]/[rx.poll]/[rx.exhausted], [rx.naks_tx],
    [rx.naks_overheard], [rx.naks_suppressed], [rx.decode_failures],
    [rx.loss_dropped], [rx.duplicates]; transport
    [udp.datagrams_tx]/[udp.datagrams_rx]/[udp.syscalls_tx]/
    [udp.syscalls_rx]/[udp.tx_errors]; plus the reactor and fault-shim
    counters.

    [faults] arms an {!Rmc_obs.Fault} shim at the sender's datagram
    boundary: every data/parity datagram passes through it per destination
    (frames carry one message each while the shim is armed), so each
    receiver of the unicast fan-out sees an independent
    drop/duplicate/reorder/delay/corrupt pattern — under [`Multicast] the
    single group destination makes shim faults upstream-shared instead,
    like loss on the link before the fan-out.  Control datagrams are
    spared, matching the reception-loss model.  Corrupted datagrams are
    caught by the header CRC on reception and show up as
    [rx.decode_failures].

    Returns [Error] (context ["Udp_np.run_local"]) on empty data, bad
    payload sizes, [loss] outside [0, 1), or no receivers. *)

val run_local_exn :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  ?transport:transport ->
  receivers:int ->
  loss:float ->
  seed:int ->
  data:Bytes.t array ->
  unit ->
  report
(** @raise Invalid_argument where {!run_local} would return [Error]. *)

val run_multi :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  ?transport:transport ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  (multi_report, Rmc_core.Error.t) result
(** Run [Array.length sessions] concurrent sessions (element [sid] is that
    session's payload array) over one reactor, one shared sender socket and
    [receivers] shared receiver sockets.  Every session must finish —
    completion, verification and ejections are tracked per (receiver,
    session) pair — before the linger/shutdown sequence starts.

    Per-session sender counters are recorded under [session.<sid>.]
    scopes of [metrics]; receiver counters are shared (receivers serve all
    sessions on one socket).

    Returns [Error] (context ["Udp_np.run_multi"]) on the same conditions
    as {!run_local}, plus more than 65536 sessions or more than 65536 TGs
    in one session (the wire demux packs sid and tg into 16 bits each). *)

val run_multi_exn :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?trace:Rmc_obs.Trace.t ->
  ?recorder:Rmc_obs.Recorder.t ->
  ?faults:Rmc_obs.Fault.spec ->
  ?transport:transport ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  multi_report
(** @raise Invalid_argument where {!run_multi} would return [Error]. *)

val run_sharded :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?transport:transport ->
  shards:int ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  (multi_report, Rmc_core.Error.t) result
(** {!run_multi} partitioned across [min shards (Array.length sessions)]
    OCaml domains.  Sessions are split into contiguous slices; each shard
    runs its own reactor, sender socket, receiver sockets (each shard has
    its own [receivers] receivers) and buffer pool, so the per-shard
    transport is exactly a {!run_multi} and no mutable driver state
    crosses domains.  The shared [metrics] registry is domain-safe
    (atomic counters — shard contributions sum; gauges are last-writer);
    per-session sender counters keep their global [session.<sid>.]
    scopes.  Under [`Multicast] each shard derives its own group, so
    shards never hear each other.

    The merged report is indexed by global session id, [naks_sent] and
    friends are summed, [wall_seconds] is the slowest shard, and
    [receivers] refers to each shard's receiver count (total sockets
    scale with [shards]).

    [trace], [recorder] and [faults] are deliberately absent: none of
    those sinks is domain-safe.

    Returns [Error] (context ["Udp_np.run_sharded"]) on the
    {!run_multi} conditions or [shards < 1]. *)

val run_sharded_exn :
  ?config:config ->
  ?metrics:Rmc_obs.Metrics.t ->
  ?transport:transport ->
  shards:int ->
  receivers:int ->
  loss:float ->
  seed:int ->
  sessions:Bytes.t array array ->
  unit ->
  multi_report
(** @raise Invalid_argument where {!run_sharded} would return [Error]. *)
