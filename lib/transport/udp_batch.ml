(* OCaml face of the sendmmsg/recvmmsg stubs: growable send batches and
   reusable receive rings, with syscalls counted so the bench (and the
   metrics) can report syscalls per datagram honestly. *)

external native_mmsg : unit -> bool = "rmc_udp_native_mmsg"
external sendmmsg_stub :
  Unix.file_descr -> Bytes.t array -> int array -> Unix.sockaddr array -> int -> int
  = "rmc_udp_sendmmsg"
external recvmmsg_stub :
  Unix.file_descr -> Bytes.t array -> int array -> Unix.sockaddr array -> int -> int
  = "rmc_udp_recvmmsg"

let native = native_mmsg ()
let max_batch = 64

(* --- send batches ------------------------------------------------------ *)

type send = {
  mutable bufs : Bytes.t array;
  mutable lens : int array;
  mutable dests : Unix.sockaddr array;
  mutable count : int;
}

let dummy_addr = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let send_create ?(capacity = max_batch) () =
  let capacity = max 1 capacity in
  {
    bufs = Array.make capacity Bytes.empty;
    lens = Array.make capacity 0;
    dests = Array.make capacity dummy_addr;
    count = 0;
  }

let send_length batch = batch.count

let grow batch =
  let capacity = 2 * Array.length batch.bufs in
  let bufs = Array.make capacity Bytes.empty in
  let lens = Array.make capacity 0 in
  let dests = Array.make capacity dummy_addr in
  Array.blit batch.bufs 0 bufs 0 batch.count;
  Array.blit batch.lens 0 lens 0 batch.count;
  Array.blit batch.dests 0 dests 0 batch.count;
  batch.bufs <- bufs;
  batch.lens <- lens;
  batch.dests <- dests

let add batch buf ~len dest =
  if batch.count = Array.length batch.bufs then grow batch;
  batch.bufs.(batch.count) <- buf;
  batch.lens.(batch.count) <- len;
  batch.dests.(batch.count) <- dest;
  batch.count <- batch.count + 1

type flush_result = { sent : int; errors : int; syscalls : int }

(* Slide the pending tail of the batch down to the front: the stub sends
   a prefix, so after a short send (EAGAIN / a failing entry skipped) the
   remainder restarts at index 0. *)
let compact batch from =
  let remaining = batch.count - from in
  Array.blit batch.bufs from batch.bufs 0 remaining;
  Array.blit batch.lens from batch.lens 0 remaining;
  Array.blit batch.dests from batch.dests 0 remaining;
  (* Drop stale references so flushed buffers can be released/collected. *)
  Array.fill batch.bufs remaining (batch.count - remaining) Bytes.empty;
  Array.fill batch.dests remaining (batch.count - remaining) dummy_addr;
  batch.count <- remaining

let flush batch socket =
  let sent = ref 0 and errors = ref 0 and syscalls = ref 0 in
  let rec loop () =
    if batch.count > 0 then begin
      incr syscalls;
      match sendmmsg_stub socket batch.bufs batch.lens batch.dests batch.count with
      | n when n >= batch.count ->
        sent := !sent + n;
        compact batch batch.count
      | n ->
        sent := !sent + n;
        (* The entry after the sent prefix failed (or the kernel told us
           to come back later): a full UDP send queue behaves like
           network loss everywhere else in this driver, so count the
           datagram as an error and move on rather than block the
           tick. *)
        incr errors;
        compact batch (n + 1);
        loop ()
      | exception Unix.Unix_error (_, _, _) ->
        (* First pending entry failed outright. *)
        incr errors;
        compact batch 1;
        loop ()
    end
  in
  loop ();
  { sent = !sent; errors = !errors; syscalls = !syscalls }

(* --- receive rings ------------------------------------------------------ *)

type recv = {
  slots : Bytes.t array;
  slot_lens : int array;
  froms : Unix.sockaddr array;
  slot_count : int;
}

let recv_create ?(slots = 8) ~buf_size () =
  let slots = max 1 (min slots max_batch) in
  {
    slots = Array.init slots (fun _ -> Bytes.create buf_size);
    slot_lens = Array.make slots 0;
    froms = Array.make slots dummy_addr;
    slot_count = slots;
  }

let slots ring = ring.slot_count

let recv_batch ring socket =
  recvmmsg_stub socket ring.slots ring.slot_lens ring.froms ring.slot_count

let slot ring i = ring.slots.(i)
let slot_len ring i = ring.slot_lens.(i)
let slot_from ring i = ring.froms.(i)
