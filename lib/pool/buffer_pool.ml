type t = {
  buf_size : int;
  capacity : int;
  owner : Domain.id;  (* the one domain allowed to checkout/release *)
  free : Bytes.t array; (* free.(0 .. free_count-1) are available *)
  mutable free_count : int;
  mutable created : int; (* pooled buffers materialized so far *)
  mutable outstanding : int;
  mutable peak_outstanding : int;
  mutable total_checkouts : int;
  mutable overflow_allocs : int;
}

let create ?(capacity = 16) ~buf_size () =
  if buf_size < 1 then invalid_arg "Buffer_pool.create: buf_size must be >= 1";
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    buf_size;
    capacity;
    owner = Domain.self ();
    free = Array.make capacity Bytes.empty;
    free_count = 0;
    created = 0;
    outstanding = 0;
    peak_outstanding = 0;
    total_checkouts = 0;
    overflow_allocs = 0;
  }

let buf_size t = t.buf_size
let capacity t = t.capacity
let outstanding t = t.outstanding
let peak_outstanding t = t.peak_outstanding
let total_checkouts t = t.total_checkouts
let overflow_allocs t = t.overflow_allocs
let free_buffers t = t.free_count

(* The free list is plain mutable state: the pool is per-domain by
   design (each shard of the sharded reactor owns its own), and this
   check turns a silent cross-domain race into a loud error. *)
let check_owner t context =
  if not (Domain.self () = t.owner) then
    invalid_arg ("Buffer_pool." ^ context ^ ": pool used outside its owning domain")

let checkout t =
  check_owner t "checkout";
  t.total_checkouts <- t.total_checkouts + 1;
  t.outstanding <- t.outstanding + 1;
  if t.outstanding > t.peak_outstanding then t.peak_outstanding <- t.outstanding;
  if t.free_count > 0 then begin
    t.free_count <- t.free_count - 1;
    let buffer = t.free.(t.free_count) in
    (* Drop the free-list reference so a leaked buffer is reachable only
       through its (delinquent) owner, and double releases are detectable
       by scanning the free list. *)
    t.free.(t.free_count) <- Bytes.empty;
    buffer
  end
  else if t.created < t.capacity then begin
    t.created <- t.created + 1;
    Bytes.create t.buf_size
  end
  else begin
    t.overflow_allocs <- t.overflow_allocs + 1;
    Bytes.create t.buf_size
  end

let release t buffer =
  check_owner t "release";
  if Bytes.length buffer <> t.buf_size then
    invalid_arg "Buffer_pool.release: buffer size does not match this pool";
  for i = 0 to t.free_count - 1 do
    if t.free.(i) == buffer then invalid_arg "Buffer_pool.release: double release"
  done;
  if t.outstanding = 0 then
    invalid_arg "Buffer_pool.release: nothing checked out";
  t.outstanding <- t.outstanding - 1;
  if t.free_count < t.capacity then begin
    t.free.(t.free_count) <- buffer;
    t.free_count <- t.free_count + 1
  end
(* else: an overflow buffer coming home to a full free list; let the GC
   have it. *)

let with_buf t f =
  let buffer = checkout t in
  match f buffer with
  | value ->
    release t buffer;
    value
  | exception exn ->
    release t buffer;
    raise exn

let assert_quiescent t =
  if t.outstanding <> 0 then
    invalid_arg
      (Printf.sprintf "Buffer_pool: %d buffer(s) leaked (still checked out)" t.outstanding)
