(* Lock-free buffer pool: a Treiber stack of permanently-allocated nodes.

   The free list is a singly-linked stack threaded through a fixed node
   array, with the head held in one [Atomic.t] word so any domain can
   checkout/release without locks — one pool can serve several reactor
   shards or sweep workers at once.

   ABA safety comes from a stamped head word rather than hazard
   pointers: the head packs [(stamp << idx_bits) | (node_index + 1)]
   (0 = empty), and every successful push or pop installs
   [stamp + 1].  A pop that read head (s, A) and A's next link can only
   CAS if the head is still exactly (s, A); any interleaved pop/push —
   including the classic pop-A, pop-B, push-A interleaving that breaks
   a pointer-only Treiber stack under node reuse — bumps the stamp and
   forces a retry.  Nodes are never freed (each pooled buffer owns its
   node for the life of the pool), so a stale traversal can at worst
   read an outdated [n_next] that the stamp check then rejects.

   Counters are atomics; [free] flags give best-effort double-release
   detection (exact when the racing releases are concurrent, TOCTOU
   like the old free-list scan when a buffer was re-checked-out in
   between). *)

type node = {
  n_buf : Bytes.t;
  mutable n_next : int; (* head word below this node; only written while unlinked *)
  n_free : bool Atomic.t; (* true while sitting in the free stack *)
  n_index : int;
}

type t = {
  buf_size : int;
  capacity : int;
  head : int Atomic.t; (* stamped free-stack head, 0 = empty *)
  nodes : node option Atomic.t array; (* slot i = i-th materialized pooled buffer *)
  created : int Atomic.t; (* pooled buffers materialized so far *)
  outstanding : int Atomic.t;
  peak_outstanding : int Atomic.t;
  total_checkouts : int Atomic.t;
  overflow_allocs : int Atomic.t;
}

(* 20 index bits leave 42 stamp bits on 63-bit ints: up to ~1M pooled
   buffers, and a stamp that would need 4e12 interleaved operations
   inside one CAS window to wrap into an ABA. *)
let idx_bits = 20
let idx_mask = (1 lsl idx_bits) - 1
let max_capacity = idx_mask - 1

let create ?(capacity = 16) ~buf_size () =
  if buf_size < 1 then invalid_arg "Buffer_pool.create: buf_size must be >= 1";
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  if capacity > max_capacity then
    invalid_arg "Buffer_pool.create: capacity exceeds the free-stack index range";
  {
    buf_size;
    capacity;
    head = Atomic.make 0;
    nodes = Array.init capacity (fun _ -> Atomic.make None);
    created = Atomic.make 0;
    outstanding = Atomic.make 0;
    peak_outstanding = Atomic.make 0;
    total_checkouts = Atomic.make 0;
    overflow_allocs = Atomic.make 0;
  }

let buf_size t = t.buf_size
let capacity t = t.capacity
let outstanding t = Atomic.get t.outstanding
let peak_outstanding t = Atomic.get t.peak_outstanding
let total_checkouts t = Atomic.get t.total_checkouts
let overflow_allocs t = Atomic.get t.overflow_allocs

let free_buffers t =
  let free = ref 0 in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some node when Atomic.get node.n_free -> incr free
      | _ -> ())
    t.nodes;
  !free

let restamp old_head index_plus_one =
  ((((old_head lsr idx_bits) + 1) lsl idx_bits) lor index_plus_one)
  land max_int

let rec push t node =
  let head = Atomic.get t.head in
  node.n_next <- head;
  if not (Atomic.compare_and_set t.head head (restamp head (node.n_index + 1))) then
    push t node

let rec pop t =
  let head = Atomic.get t.head in
  if head land idx_mask = 0 then None
  else begin
    let node =
      match Atomic.get t.nodes.((head land idx_mask) - 1) with
      | Some node -> node
      | None -> assert false (* an index only reaches the head once published *)
    in
    let rest = node.n_next in
    if Atomic.compare_and_set t.head head (restamp head (rest land idx_mask)) then
      Some node
    else pop t
  end

let note_checkout t =
  ignore (Atomic.fetch_and_add t.total_checkouts 1 : int);
  let now = 1 + Atomic.fetch_and_add t.outstanding 1 in
  let rec raise_peak () =
    let peak = Atomic.get t.peak_outstanding in
    if now > peak && not (Atomic.compare_and_set t.peak_outstanding peak now) then
      raise_peak ()
  in
  raise_peak ()

(* Claim a node slot for a fresh pooled buffer; None once the pool is at
   capacity.  Slots are claimed by a fetch-and-add ticket so two domains
   never materialize into the same slot. *)
let claim_slot t =
  let slot = Atomic.fetch_and_add t.created 1 in
  if slot < t.capacity then Some slot
  else begin
    ignore (Atomic.fetch_and_add t.created (-1) : int);
    None
  end

let checkout t =
  note_checkout t;
  match pop t with
  | Some node ->
    Atomic.set node.n_free false;
    node.n_buf
  | None -> (
    match claim_slot t with
    | Some slot ->
      let node =
        { n_buf = Bytes.create t.buf_size; n_next = 0; n_free = Atomic.make false;
          n_index = slot }
      in
      (* published via the atomic slot, so a release on another domain
         finds it even before the node ever reaches the free stack *)
      Atomic.set t.nodes.(slot) (Some node);
      node.n_buf
    | None ->
      ignore (Atomic.fetch_and_add t.overflow_allocs 1 : int);
      Bytes.create t.buf_size)

let find_node t buffer =
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < t.capacity do
    (match Atomic.get t.nodes.(!i) with
    | Some node when node.n_buf == buffer -> found := Some node
    | _ -> ());
    incr i
  done;
  !found

let note_release t =
  let before = Atomic.fetch_and_add t.outstanding (-1) in
  if before <= 0 then begin
    ignore (Atomic.fetch_and_add t.outstanding 1 : int);
    invalid_arg "Buffer_pool.release: nothing checked out"
  end

let release t buffer =
  if Bytes.length buffer <> t.buf_size then
    invalid_arg "Buffer_pool.release: buffer size does not match this pool";
  match find_node t buffer with
  | Some node ->
    if Atomic.exchange node.n_free true then
      invalid_arg "Buffer_pool.release: double release";
    note_release t;
    push t node
  | None -> (
    note_release t;
    (* An overflow buffer coming home: adopt it as a pooled node if the
       pool is still under capacity, otherwise let the GC have it. *)
    match claim_slot t with
    | Some slot ->
      let node =
        { n_buf = buffer; n_next = 0; n_free = Atomic.make true; n_index = slot }
      in
      Atomic.set t.nodes.(slot) (Some node);
      push t node
    | None -> ())

let with_buf t f =
  let buffer = checkout t in
  match f buffer with
  | value ->
    release t buffer;
    value
  | exception exn ->
    release t buffer;
    raise exn

let assert_quiescent t =
  let outstanding = Atomic.get t.outstanding in
  if outstanding <> 0 then
    invalid_arg
      (Printf.sprintf "Buffer_pool: %d buffer(s) leaked (still checked out)" outstanding)
