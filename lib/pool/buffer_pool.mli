(** Fixed-size byte-buffer pool for the packet datapath.

    The wire drivers serialize every outgoing datagram into a scratch
    buffer, hand it to the kernel (or the simulated network), and are done
    with it before the next event fires — a textbook checkout/release
    workload.  Allocating a fresh [Bytes.t] per datagram instead makes the
    minor heap the per-packet bottleneck the paper's §5 end-host model
    warns about, so the drivers draw from a pool of [capacity] buffers of
    [buf_size] bytes each and return them as soon as the datagram has left.

    Discipline is enforced, not assumed:

    - {!release} rejects buffers of the wrong size (they cannot have come
      from this pool) and buffers that are already free (a double release
      would hand the same buffer to two owners).
    - {!checkout} never blocks and never fails: when every pooled buffer
      is out, it allocates a fresh one and counts it in
      {!overflow_allocs} — a non-zero value means the pool is undersized,
      visible in metrics rather than as a stall or a crash.
    - {!assert_quiescent} is the leak detector: drivers call it at
      teardown, when every checkout must have been released.

    Buffers come back with whatever bytes the previous owner wrote; users
    must treat a checkout as uninitialized.  The pool is {e per-domain}:
    it belongs to the domain that created it (each shard of the sharded
    UDP reactor owns one), and {!checkout}/{!release} from any other
    domain raise rather than silently corrupt the free list. *)

type t

val create : ?capacity:int -> buf_size:int -> unit -> t
(** [create ~buf_size ()] makes a pool of [capacity] (default 16) buffers
    of [buf_size] bytes.  Buffers materialize lazily on first checkout, so
    an idle pool costs a record.
    @raise Invalid_argument if [buf_size < 1] or [capacity < 1]. *)

val buf_size : t -> int

val capacity : t -> int

val checkout : t -> Bytes.t
(** Borrow a buffer of {!buf_size} bytes with arbitrary contents.  Falls
    back to a fresh allocation (counted in {!overflow_allocs}) when the
    pool is empty-handed.
    @raise Invalid_argument when called from a domain other than the
    pool's creator. *)

val release : t -> Bytes.t -> unit
(** Return a borrowed buffer.  Overflow buffers are absorbed into the
    free list when there is room and dropped otherwise.
    @raise Invalid_argument on a wrong-sized buffer, a double release, or
    a release from a foreign domain. *)

val with_buf : t -> (Bytes.t -> 'a) -> 'a
(** [with_buf t f] checks a buffer out, applies [f], and releases it even
    if [f] raises. *)

val outstanding : t -> int
(** Buffers currently checked out (0 for a quiescent pool). *)

val peak_outstanding : t -> int
(** High-water mark of {!outstanding} over the pool's lifetime — the
    capacity the workload actually needed. *)

val total_checkouts : t -> int

val overflow_allocs : t -> int
(** Checkouts served by a fresh allocation because the pool was empty. *)

val free_buffers : t -> int
(** Buffers sitting in the free list right now. *)

val assert_quiescent : t -> unit
(** Leak detection: @raise Invalid_argument naming the count if any
    buffer is still checked out. *)
