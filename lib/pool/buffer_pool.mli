(** Fixed-size byte-buffer pool for the packet datapath — lock-free, so
    one pool can serve several domains.

    The wire drivers serialize every outgoing datagram into a scratch
    buffer, hand it to the kernel (or the simulated network), and are done
    with it before the next event fires — a textbook checkout/release
    workload.  Allocating a fresh [Bytes.t] per datagram instead makes the
    minor heap the per-packet bottleneck the paper's §5 end-host model
    warns about, so the drivers draw from a pool of [capacity] buffers of
    [buf_size] bytes each and return them as soon as the datagram has left.

    The free list is a Treiber stack whose head is a single stamped
    [Atomic.t] word (the stamp increments on every push/pop, defeating
    ABA under node reuse), so {!checkout} and {!release} are wait-free of
    locks and safe from any domain: one pool can back multiple reactor
    shards or {!Rmc_rse.Parallel} workers, and a buffer checked out on
    one domain may be released on another.

    Discipline is enforced, not assumed:

    - {!release} rejects buffers of the wrong size (they cannot have come
      from this pool) and buffers that are already free (a double release
      would hand the same buffer to two owners).
    - {!checkout} never blocks and never fails: when every pooled buffer
      is out, it allocates a fresh one and counts it in
      {!overflow_allocs} — a non-zero value means the pool is undersized,
      visible in metrics rather than as a stall or a crash.
    - {!assert_quiescent} is the leak detector: drivers call it at
      teardown, when every checkout must have been released.

    Buffers come back with whatever bytes the previous owner wrote; users
    must treat a checkout as uninitialized. *)

type t

val create : ?capacity:int -> buf_size:int -> unit -> t
(** [create ~buf_size ()] makes a pool of [capacity] (default 16) buffers
    of [buf_size] bytes.  Buffers materialize lazily on first checkout, so
    an idle pool costs a record.
    @raise Invalid_argument if [buf_size < 1] or [capacity < 1]. *)

val buf_size : t -> int

val capacity : t -> int

val checkout : t -> Bytes.t
(** Borrow a buffer of {!buf_size} bytes with arbitrary contents.  Falls
    back to a fresh allocation (counted in {!overflow_allocs}) when the
    pool is empty-handed.  Safe from any domain. *)

val release : t -> Bytes.t -> unit
(** Return a borrowed buffer — from any domain, not necessarily the one
    that checked it out.  Overflow buffers are absorbed into the free
    list when there is room and dropped otherwise.
    @raise Invalid_argument on a wrong-sized buffer, a double release, or
    a release with nothing checked out. *)

val with_buf : t -> (Bytes.t -> 'a) -> 'a
(** [with_buf t f] checks a buffer out, applies [f], and releases it even
    if [f] raises. *)

val outstanding : t -> int
(** Buffers currently checked out (0 for a quiescent pool). *)

val peak_outstanding : t -> int
(** High-water mark of {!outstanding} over the pool's lifetime — the
    capacity the workload actually needed. *)

val total_checkouts : t -> int

val overflow_allocs : t -> int
(** Checkouts served by a fresh allocation because the pool was empty. *)

val free_buffers : t -> int
(** Buffers sitting in the free list right now.  Under concurrent
    traffic this is a snapshot, exact only at quiescence. *)

val assert_quiescent : t -> unit
(** Leak detection: @raise Invalid_argument naming the count if any
    buffer is still checked out. *)
