(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ (Blackman & Vigna), seeded through
    splitmix64.  Every stochastic component of the library takes an explicit
    [Rng.t] so that simulations are reproducible and independent streams can
    be split off for parallel or per-receiver use. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed (default
    [0x9e3779b97f4a7c15] truncated).  Equal seeds give equal streams. *)

val of_int64_seed : int64 -> t
(** Seed from a full 64-bit value. *)

val copy : t -> t
(** Independent copy with identical current state. *)

val split : t -> t
(** [split rng] draws from [rng] to seed a fresh, statistically independent
    generator.  [rng] advances. *)

val derive_seed : int -> int array -> int
(** [derive_seed seed coords] deterministically derives an independent
    seed for the grid cell at integer coordinates [coords] from the base
    [seed], by folding both through splitmix64.  A pure function: sweep
    cells seeded this way are reproducible regardless of evaluation
    order, which is what makes parallel sweeps byte-identical to
    sequential ones.  The result is non-negative and fits [create]'s
    [?seed]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1) with 53-bit resolution. *)

val float_pos : t -> float
(** Uniform float in (0, 1]; never returns 0, safe as [log] argument. *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate (mean [1/rate]).
    Requires [rate > 0]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success in Bernoulli([p]) trials;
    support 0, 1, 2, ...  Requires [0 < p <= 1]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
