module Binomial = struct
  let check n p =
    if n < 0 then invalid_arg "Binomial: n < 0";
    if p < 0.0 || p > 1.0 then invalid_arg "Binomial: p outside [0,1]"

  let log_pmf ~n ~p j =
    check n p;
    if j < 0 || j > n then neg_infinity
    else if p = 0.0 then if j = 0 then 0.0 else neg_infinity
    else if p = 1.0 then if j = n then 0.0 else neg_infinity
    else
      Special.log_choose n j
      +. (float_of_int j *. log p)
      +. (float_of_int (n - j) *. Float.log1p (-.p))

  let pmf ~n ~p j = exp (log_pmf ~n ~p j)

  (* Tail sums run the pmf recurrence {e away from the mode}, seeded at the
     tail's largest term, so the seed never underflows unless the whole
     tail is negligible.  (Seeding at the far end — e.g. pmf 0 = (1-p)^n,
     which is 0.0 in floats for n = 10^6, p = 0.01 — would zero every
     subsequent term even through the bulk.)  Terms decrease monotonically
     away from the mode, so once the remaining count can't move the sum the
     loop stops — O(stddev) work regardless of n. *)

  (* P(X <= j) for j <= mean: largest term at j, iterate downward. *)
  let lower_sum ~n ~p j =
    let term = ref (pmf ~n ~p j) in
    let acc = ref !term in
    let i = ref j in
    while !i >= 1 && !term *. float_of_int !i > !acc *. 1e-17 do
      let fi = float_of_int !i in
      (term := !term *. (fi /. float_of_int (n - !i + 1)) *. ((1.0 -. p) /. p));
      acc := !acc +. !term;
      decr i
    done;
    !acc

  (* P(X > j) for j >= mean: largest term at j+1, iterate upward. *)
  let upper_sum ~n ~p j =
    let term = ref (pmf ~n ~p (j + 1)) in
    let acc = ref !term in
    let i = ref (j + 1) in
    while !i < n && !term *. float_of_int (n - !i) > !acc *. 1e-17 do
      let fi = float_of_int (!i + 1) in
      (term := !term *. (float_of_int (n - !i) /. fi) *. (p /. (1.0 -. p)));
      acc := !acc +. !term;
      incr i
    done;
    !acc

  let cdf ~n ~p j =
    check n p;
    if j < 0 then 0.0
    else if j >= n then 1.0
    else if p = 0.0 then 1.0
    else if p = 1.0 then 0.0
    else if float_of_int j <= float_of_int n *. p then Float.min 1.0 (lower_sum ~n ~p j)
    else Float.max 0.0 (1.0 -. upper_sum ~n ~p j)

  let survival ~n ~p j =
    check n p;
    if j < 0 then 1.0
    else if j >= n then 0.0
    else if p = 0.0 then 0.0
    else if p = 1.0 then 1.0
    else if float_of_int j <= float_of_int n *. p then
      Float.max 0.0 (1.0 -. lower_sum ~n ~p j)
    else Float.min 1.0 (upper_sum ~n ~p j)

  let mean ~n ~p = float_of_int n *. p
  let variance ~n ~p = float_of_int n *. p *. (1.0 -. p)
end

module Negative_binomial = struct
  let check k a p =
    if k <= 0 then invalid_arg "Negative_binomial: k <= 0";
    if a < 0 then invalid_arg "Negative_binomial: a < 0";
    if p < 0.0 || p >= 1.0 then invalid_arg "Negative_binomial: p outside [0,1)"

  let log_pmf ~k ~a ~p m =
    check k a p;
    if m < 0 then neg_infinity
    else if m = 0 then log (Binomial.cdf ~n:(k + a) ~p a)
    else if p = 0.0 then neg_infinity
    else
      Special.log_choose (k + a + m - 1) (k - 1)
      +. (float_of_int (m + a) *. log p)
      +. (float_of_int k *. Float.log1p (-.p))

  let pmf ~k ~a ~p m = exp (log_pmf ~k ~a ~p m)

  let cdf_array ~k ~a ~p mmax =
    check k a p;
    if mmax < 0 then invalid_arg "Negative_binomial.cdf_array: mmax < 0";
    let cdf = Array.make (mmax + 1) 0.0 in
    cdf.(0) <- Binomial.cdf ~n:(k + a) ~p a;
    if p > 0.0 && mmax >= 1 then begin
      (* pmf(m) / pmf(m-1) = p * (k+a+m-1) / (a+m) for m >= 2; seed at m=1. *)
      let term = ref (pmf ~k ~a ~p 1) in
      cdf.(1) <- Float.min 1.0 (cdf.(0) +. !term);
      let m = ref 2 in
      while !m <= mmax && !term > cdf.(!m - 1) *. 1e-17 do
        (term :=
           !term *. p *. (float_of_int (k + a + !m - 1) /. float_of_int (a + !m)));
        cdf.(!m) <- Float.min 1.0 (cdf.(!m - 1) +. !term);
        incr m
      done;
      (* Once increments fall below float resolution the true residual tail
         is smaller than the accumulated rounding error; snap to 1 so that
         group products (cdf^R for R up to 1e6) converge instead of stalling
         at 1 - epsilon. *)
      for j = !m to mmax do
        cdf.(j) <- 1.0
      done
    end
    else if p = 0.0 then
      for m = 1 to mmax do
        cdf.(m) <- 1.0
      done;
    cdf

  let cdf ~k ~a ~p m =
    if m < 0 then 0.0
    else
      let table = cdf_array ~k ~a ~p m in
      table.(m)
end

module Geometric = struct
  let check p = if p <= 0.0 || p > 1.0 then invalid_arg "Geometric: p outside (0,1]"

  let pmf ~p m =
    check p;
    if m < 0 then 0.0 else Special.pow_1m (1.0 -. p) m *. p

  let cdf ~p m =
    check p;
    if m < 0 then 0.0 else Special.one_minus_power_of_complement p (float_of_int (m + 1))

  let mean ~p =
    check p;
    (1.0 -. p) /. p
end
