(** Random-variate samplers beyond the primitives in {!Rng}.

    The Monte-Carlo simulations of Figures 11-16 draw, per multicast
    transmission, the *number* of receivers (or tree nodes) that lose the
    packet — a binomial variate with n up to 2^17 — and then the identity of
    the losers — a uniform sample without replacement.  Both are provided
    here with cost independent of n (amortised O(np) or O(1)). *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Exact Binomial(n, p) sampling.  Strategy: direct Bernoulli loop for tiny
    [n]; geometric skip-sampling when [n*min(p,1-p)] is small; Hörmann's BTRS
    transformed-rejection in the central regime; beta-order-statistic
    splitting (each level conditions on a Beta-distributed latent uniform and
    exactly halves [n]) above [n = 2^16], where the aggregate simulation tier
    calls with [n] up to 10^6.  Always exact, never a normal
    approximation. *)

val distinct_ints : Rng.t -> n:int -> k:int -> int array
(** [distinct_ints rng ~n ~k] draws [k] distinct integers uniformly from
    [0, n-1] (Floyd's algorithm, O(k) expected).  Order is not uniform.
    Requires [0 <= k <= n]. *)

val subset_bernoulli : Rng.t -> n:int -> p:float -> int array
(** The set [{ i in [0,n-1] | coin(p) }] drawn by sampling its size
    binomially and then its members uniformly — equivalent in distribution
    to flipping [n] coins, but in O(np) instead of O(n). Sorted output. *)

val categorical : Rng.t -> weights:float array -> int
(** Index drawn proportionally to [weights] (linear scan; intended for small
    support such as choosing among scenario mixes). *)
