let binomial_bernoulli_loop rng ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng p then incr count
  done;
  !count

(* Count successes by skipping over failures geometrically: expected cost
   O(np), exact for any p in (0,1). *)
let binomial_geometric rng ~n ~p =
  let count = ref 0 in
  let position = ref 0 in
  let continue = ref true in
  while !continue do
    let skip = Rng.geometric rng ~p in
    if skip >= n - !position then continue := false
    else begin
      position := !position + skip + 1;
      incr count;
      if !position >= n then continue := false
    end
  done;
  !count

(* BTRS: transformed rejection with squeeze (Hörmann 1993), exact for
   n*p >= 10 and p <= 1/2. *)
let binomial_btrs rng ~n ~p =
  let nf = float_of_int n in
  let q = 1.0 -. p in
  let spq = sqrt (nf *. p *. q) in
  let b = 1.15 +. (2.53 *. spq) in
  let a = -0.0873 +. (0.0248 *. b) +. (0.01 *. p) in
  let c = (nf *. p) +. 0.5 in
  let vr = 0.92 -. (4.2 /. b) in
  let alpha = (2.83 +. (5.1 /. b)) *. spq in
  let lpq = log (p /. q) in
  let m = int_of_float ((nf +. 1.0) *. p) in
  let h = Special.log_factorial m +. Special.log_factorial (n - m) in
  let rec draw () =
    let u = Rng.float rng -. 0.5 in
    let v = Rng.float rng in
    let us = 0.5 -. Float.abs u in
    let kf = Float.floor ((((2.0 *. a /. us) +. b) *. u) +. c) in
    if kf < 0.0 || kf > nf then draw ()
    else begin
      let k = int_of_float kf in
      if us >= 0.07 && v <= vr then k
      else begin
        let v = log (v *. alpha /. ((a /. (us *. us)) +. b)) in
        let accept =
          v
          <= h
             -. Special.log_factorial k
             -. Special.log_factorial (n - k)
             +. (float_of_int (k - m) *. lpq)
        in
        if accept then k else draw ()
      end
    end
  in
  draw ()

(* Standard normal via the Marsaglia polar method; feeds the gamma sampler
   below, which only the large-n binomial split path reaches. *)
let rec std_normal rng =
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let v = (2.0 *. Rng.float rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then std_normal rng
  else u *. sqrt (-2.0 *. log s /. s)

(* Marsaglia-Tsang squeeze for Gamma(shape, 1), shape >= 1: exact rejection,
   ~1.05 normal draws per variate. *)
let gamma_mt rng ~shape =
  if shape < 1.0 then invalid_arg "Sampler.gamma_mt: shape < 1";
  let d = shape -. (1.0 /. 3.0) in
  let c = 1.0 /. sqrt (9.0 *. d) in
  let rec draw () =
    let x = std_normal rng in
    let t = 1.0 +. (c *. x) in
    if t <= 0.0 then draw ()
    else begin
      let v = t *. t *. t in
      let u = Rng.float_pos rng in
      if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
      else draw ()
    end
  in
  draw ()

let beta rng ~a ~b =
  let x = gamma_mt rng ~shape:a in
  let y = gamma_mt rng ~shape:b in
  x /. (x +. y)

(* Above this the BTRS acceptance test starts paying log_gamma tail calls
   and accumulating log-domain cancellation at ~1e7-magnitude operands; the
   beta split below halves n per level, so it reaches this regime in
   O(log(n/threshold)) exact splits. *)
let binomial_split_threshold = 1 lsl 16

let clamp_unit x = Float.max 0.0 (Float.min 1.0 x)

let rec binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial: n < 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Sampler.binomial: p outside [0,1]";
  if n = 0 || p = 0.0 then 0
  else if p = 1.0 then n
  else if p > 0.5 then n - binomial rng ~n ~p:(1.0 -. p)
  else if n <= 32 then binomial_bernoulli_loop rng ~n ~p
  else if float_of_int n *. p < 10.0 then binomial_geometric rng ~n ~p
  else if n > binomial_split_threshold then binomial_beta_split rng ~n ~p
  else binomial_btrs rng ~n ~p

(* Large-n fast path: condition on the i-th order statistic of the n latent
   uniforms, U_(i) ~ Beta(i, n+1-i).  If U_(i) <= p then i trials already
   succeeded and the n-i remaining uniforms are iid on (U_(i), 1], else at
   most i-1 succeeded and the i-1 uniforms below U_(i) are iid on [0, U_(i)).
   Either branch is an exact binomial of about half the size with a rescaled
   p, recursed through the main dispatch (which restores p <= 1/2 and picks
   the cheap regime once n is moderate). *)
and binomial_beta_split rng ~n ~p =
  let i = (n + 1) / 2 in
  let x = beta rng ~a:(float_of_int i) ~b:(float_of_int (n + 1 - i)) in
  if x <= p then i + binomial rng ~n:(n - i) ~p:(clamp_unit ((p -. x) /. (1.0 -. x)))
  else binomial rng ~n:(i - 1) ~p:(clamp_unit (p /. x))

let distinct_ints rng ~n ~k =
  if k < 0 || k > n then invalid_arg "Sampler.distinct_ints: need 0 <= k <= n";
  (* Floyd's algorithm: for j = n-k .. n-1, insert either a fresh uniform
     draw in [0, j] or j itself on collision. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let slot = ref 0 in
  for j = n - k to n - 1 do
    let candidate = Rng.int rng (j + 1) in
    let chosen = if Hashtbl.mem seen candidate then j else candidate in
    Hashtbl.replace seen chosen ();
    out.(!slot) <- chosen;
    incr slot
  done;
  out

let subset_bernoulli rng ~n ~p =
  let size = binomial rng ~n ~p in
  let members = distinct_ints rng ~n ~k:size in
  Array.sort compare members;
  members

let categorical rng ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Sampler.categorical: weights sum to <= 0";
  let x = Rng.float rng *. total in
  let rec scan i acc =
    if i = Array.length weights - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.0
