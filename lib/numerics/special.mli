(** Special functions and log-domain arithmetic.

    The analytical models of the paper must be evaluated for receiver
    populations up to [R = 10^6] and transmission-group sizes up to several
    hundred; binomial coefficients and powers overflow or underflow long
    before that, so everything here works in the log domain. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0] (Lanczos approximation,
    absolute error below 1e-13 over the range used here). *)

val log_factorial : int -> float
(** [ln n!] from a grow-on-demand memo: the prefix table of exact recurrence
    values extends geometrically the first time a larger [n] is seen and is
    never re-derived afterwards, so hot loops (binomial pmf recurrences over
    n up to ~1e6 in the aggregate simulation tier) pay one array read per
    call.  Beyond 2^21 the table stops growing and [log_gamma] takes over.
    Safe to call from multiple domains. *)

val log_factorial_extensions : unit -> int
(** Number of times the [log_factorial] memo has been extended since process
    start.  Calls that stay within the already-computed prefix leave it
    unchanged — the bench smoke gate asserts exactly that for repeated cdf
    evaluations. *)

val log_choose : int -> int -> float
(** [log_choose n k] is [ln (n choose k)]. Returns [neg_infinity] when
    [k < 0 || k > n]. *)

val log_add : float -> float -> float
(** [log_add la lb = ln (e^la + e^lb)] without overflow. *)

val log_sub : float -> float -> float
(** [log_sub la lb = ln (e^la - e^lb)]. Requires [la >= lb]. *)

val log1mexp : float -> float
(** [log1mexp x = ln (1 - e^x)] for [x < 0], numerically stable near 0. *)

val pow_1m : float -> int -> float
(** [pow_1m q i = q^i] computed safely for [i >= 0] (0^0 = 1). *)

val power_of_complement : float -> float -> float
(** [power_of_complement x r = (1 - x)^r] via [exp (r * log1p (-x))];
    accurate for tiny [x] and huge [r] (e.g. x = 1e-12, r = 1e6). *)

val one_minus_power_of_complement : float -> float -> float
(** [1 - (1 - x)^r], the probability that at least one of [r] independent
    events of probability [x] occurs; stable for tiny [x]. *)
