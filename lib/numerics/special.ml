(* Lanczos approximation with g = 7, 9 coefficients (Godfrey / Numerical
   Recipes).  Relative error < 1e-13 for x > 0. *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos sum in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. (((x +. 0.5) *. log t) -. t) +. log !acc
  end

(* Grow-on-demand memo of [ln n!].  The aggregate simulation tier calls
   [Binomial.cdf]/[Negative_binomial.cdf_array] in its per-TG sampling loop
   with n up to ~1e6; a fixed 256-entry table would push every such call
   through [log_gamma].  Instead the prefix table extends geometrically the
   first time a larger n is seen and is never re-derived: extension copies
   the already-computed prefix and continues the recurrence from there, so
   over a process lifetime each table entry is computed exactly once.

   The published snapshot is an immutable record swapped in atomically.
   Concurrent growers (the bench shards reps across domains) may race, but
   each builds a fully-initialised table before publishing, so readers
   never observe a partially-filled prefix — at worst a concurrent
   extension is repeated. *)

type log_factorial_memo = { table : float array; filled : int }

let log_factorial_memo = Atomic.make { table = [||]; filled = 0 }
let log_factorial_extensions_counter = Atomic.make 0

(* Beyond this the table would outgrow the cache benefit (16 MiB of
   floats); fall through to [log_gamma], whose relative error (< 1e-13) is
   negligible at that magnitude. *)
let log_factorial_memo_limit = 1 lsl 21

let log_factorial_extend upto =
  let upto = min upto (log_factorial_memo_limit - 1) in
  let snapshot = Atomic.get log_factorial_memo in
  if upto >= snapshot.filled then begin
    let capacity = ref (max 256 (Array.length snapshot.table)) in
    while !capacity <= upto do
      capacity := !capacity * 2
    done;
    let table = Array.make !capacity 0.0 in
    Array.blit snapshot.table 0 table 0 snapshot.filled;
    for n = max 2 snapshot.filled to !capacity - 1 do
      table.(n) <- table.(n - 1) +. log (float_of_int n)
    done;
    Atomic.set log_factorial_memo { table; filled = !capacity };
    Atomic.incr log_factorial_extensions_counter
  end

let rec log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument"
  else begin
    let snapshot = Atomic.get log_factorial_memo in
    if n < snapshot.filled then snapshot.table.(n)
    else if n >= log_factorial_memo_limit then log_gamma (float_of_int n +. 1.0)
    else begin
      (* Retry after extending: a concurrent smaller extension may publish
         after ours, so the covering snapshot is re-checked, not assumed. *)
      log_factorial_extend n;
      log_factorial n
    end
  end

let log_factorial_extensions () = Atomic.get log_factorial_extensions_counter

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let log_add la lb =
  if la = neg_infinity then lb
  else if lb = neg_infinity then la
  else if la >= lb then la +. Float.log1p (exp (lb -. la))
  else lb +. Float.log1p (exp (la -. lb))

let log1mexp x =
  if x >= 0.0 then invalid_arg "Special.log1mexp: requires x < 0"
  else if x > -.Float.log 2.0 then log (-.Float.expm1 x)
  else Float.log1p (-.exp x)

let log_sub la lb =
  if lb = neg_infinity then la
  else if la < lb then invalid_arg "Special.log_sub: requires la >= lb"
  else if la = lb then neg_infinity
  else la +. log1mexp (lb -. la)

let pow_1m q i =
  if i < 0 then invalid_arg "Special.pow_1m: negative exponent";
  if i = 0 then 1.0
  else if q = 0.0 then 0.0
  else if q = 1.0 then 1.0
  else exp (float_of_int i *. log q)

let power_of_complement x r =
  if x >= 1.0 then 0.0 else if x <= 0.0 then 1.0 else exp (r *. Float.log1p (-.x))

let one_minus_power_of_complement x r =
  if x >= 1.0 then 1.0
  else if x <= 0.0 then 0.0
  else -.Float.expm1 (r *. Float.log1p (-.x))
