type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: used only to expand a seed into four well-mixed words. *)
let splitmix_next state =
  let z = Int64.add !state 0x9e3779b97f4a7c15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_int64_seed seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* An all-zero state is a fixed point of xoshiro; splitmix cannot produce
     four zero words from any seed, but assert it anyway. *)
  assert (not Int64.(equal s0 0L && equal s1 0L && equal s2 0L && equal s3 0L));
  { s0; s1; s2; s3 }

let create ?(seed = 0x1234_5678) () = of_int64_seed (Int64.of_int seed)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_int64_seed (bits64 t)

(* Fold a base seed and a cell's integer coordinates through splitmix64.
   Purely functional: the same (seed, coords) always yields the same
   derived seed, and each coordinate perturbs the state before the next
   output is drawn, so neighbouring grid cells get well-separated seeds
   no matter how (or on which domain) the cells are later executed. *)
let derive_seed seed coords =
  let state = ref (Int64.of_int seed) in
  let out = ref (splitmix_next state) in
  Array.iter
    (fun coordinate ->
      (* Run the coordinate itself through the splitmix finaliser before
         folding it in: xoring raw multiples of the golden gamma into the
         state collides for small coordinate grids (the mixing only
         happens after the xor), while a finalised word scatters even
         adjacent coordinates across the whole state space. *)
      state := Int64.logxor !state (splitmix_next (ref (Int64.of_int coordinate)));
      out := splitmix_next state)
    coords;
  (* Truncate to a non-negative OCaml int so the result feeds [create]. *)
  Int64.to_int (Int64.shift_right_logical !out 2)

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_pos t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  (Int64.to_float bits +. 1.0) *. 0x1p-53

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  if n land (n - 1) = 0 then Int64.to_int (Int64.shift_right_logical (bits64 t) 1) land (n - 1)
  else begin
    let bound = Int64.of_int n in
    let rec draw () =
      let r = Int64.shift_right_logical (bits64 t) 1 in
      let v = Int64.rem r bound in
      (* Discard draws from the incomplete final block of size [2^63 mod n]:
         [r - v + (bound - 1)] overflows to negative exactly there. *)
      if Int64.compare (Int64.add (Int64.sub r v) (Int64.sub bound 1L)) 0L < 0 then draw ()
      else Int64.to_int v
    in
    draw ()
  end

let bool t = Int64.compare (bits64 t) 0L < 0
let bernoulli t p = float t < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (float_pos t) /. rate

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float_pos t in
    let g = log u /. Float.log1p (-.p) in
    (* Clamp: for tiny p the float result can round past max_int. *)
    if g >= 1e18 then max_int else int_of_float g

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
