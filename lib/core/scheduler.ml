module Profile = Rmc_core.Profile
module Error = Rmc_core.Error
module Np = Rmc_proto.Np
module Metrics = Rmc_obs.Metrics

type spec = {
  name : string;
  payload : string;
  profile : Profile.t;
  start : float;
}

type t = {
  network : Rmc_sim.Network.t;
  rng : Rmc_numerics.Rng.t;
  delay : float;
  default_profile : Profile.t;
  mutable specs_rev : spec list;
  mutable count : int;
}

let create ?(delay = Np.default_config.Np.delay) ?(profile = Profile.default) ~network
    ~rng () =
  match Profile.validate ~context:"Scheduler.create" profile with
  | Error _ as e -> e
  | Ok default_profile ->
    if delay < 0.0 then
      Error.invalid_arg ~context:"Scheduler.create" "negative delay"
    else Ok { network; rng; delay; default_profile; specs_rev = []; count = 0 }

let create_exn ?delay ?profile ~network ~rng () =
  Error.get_exn (create ?delay ?profile ~network ~rng ())

let add t ?profile ?(start = 0.0) ~name payload =
  let context = "Scheduler.add" in
  let profile = Option.value profile ~default:t.default_profile in
  match Profile.validate ~context profile with
  | Error _ as e -> e
  | Ok profile ->
    if String.length payload = 0 then Error.invalid_arg ~context "empty payload"
    else if profile.Profile.payload_size < 5 then
      Error.invalid_arg ~context "payload_size must be >= 5 (4-byte length prefix)"
    else if start < 0.0 then Error.invalid_arg ~context "negative start time"
    else begin
      t.specs_rev <- { name; payload; profile; start } :: t.specs_rev;
      t.count <- t.count + 1;
      Ok ()
    end

let add_exn t ?profile ?start ~name payload =
  Error.get_exn (add t ?profile ?start ~name payload)

let sessions t = t.count

type result_ = {
  name : string;
  outcome : Transfer.outcome;
  started_at : float;
  finished_at : float;
}

type summary = {
  results : result_ list;
  all_verified : bool;
  total_bytes : int;
  total_bytes_sent : int;
  makespan : float;
}

let record_metrics metrics index (r : result_) =
  let m = Metrics.scope metrics (Printf.sprintf "session.%d" index) in
  let bump name v = Metrics.incr ~by:v (Metrics.counter m name) in
  let report = r.outcome.Transfer.report in
  bump "tx.data" report.Np.data_tx;
  bump "tx.parity" report.Np.parity_tx;
  bump "tx.poll" report.Np.polls;
  bump "naks.sent" report.Np.naks_sent;
  bump "naks.suppressed" report.Np.naks_suppressed;
  bump "codec.parities_encoded" report.Np.parities_encoded;
  bump "codec.packets_decoded" report.Np.packets_decoded;
  bump "rx.unnecessary" report.Np.unnecessary_receptions;
  bump "bytes.sent" r.outcome.Transfer.bytes_sent;
  Metrics.set (Metrics.gauge m "time.started") r.started_at;
  Metrics.set (Metrics.gauge m "time.finished") r.finished_at;
  if r.outcome.Transfer.verified then bump "verified" 1

let run ?metrics t =
  let specs = List.rev t.specs_rev in
  let engine = Rmc_sim.Engine.create () in
  let mux = Np.Mux.create engine in
  let flows =
    List.map
      (fun spec ->
        let data =
          Transfer.packetize ~payload_size:spec.profile.Profile.payload_size
            spec.payload
        in
        let config = Np.config_of_profile ~delay:t.delay spec.profile in
        let flow =
          Np.Mux.add_flow mux ~config ~start:spec.start ~network:t.network ~rng:t.rng
            ~data ()
        in
        (spec, flow))
      specs
  in
  Np.Mux.run mux;
  let results =
    List.map
      (fun (spec, flow) ->
        let report = Np.Mux.report flow in
        let outcome = Transfer.outcome_of_report ~message_len:(String.length spec.payload) report in
        {
          name = spec.name;
          outcome;
          started_at = Np.Mux.started_at flow;
          finished_at = Np.Mux.finished_at flow;
        })
      flows
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iteri (fun i r -> record_metrics m i r) results;
    Metrics.incr ~by:(List.length results) (Metrics.counter m "scheduler.sessions");
    Metrics.set (Metrics.gauge m "scheduler.makespan") (Rmc_sim.Engine.now engine));
  let total_bytes =
    List.fold_left (fun acc s -> acc + String.length s.payload) 0 specs
  in
  let total_sent =
    List.fold_left (fun acc r -> acc + r.outcome.Transfer.bytes_sent) 0 results
  in
  {
    results;
    all_verified = List.for_all (fun r -> r.outcome.Transfer.verified) results;
    total_bytes;
    total_bytes_sent = total_sent;
    makespan = Rmc_sim.Engine.now engine;
  }
