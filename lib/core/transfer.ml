module Profile = Rmc_core.Profile
module Error = Rmc_core.Error

type outcome = {
  report : Rmc_proto.Np.report;
  bytes_sent : int;
  efficiency : float;
  verified : bool;
}

(* The first 4 bytes carry the message length so that padding can be
   stripped on reassembly. *)
let packetize ~payload_size message =
  if payload_size < 5 then invalid_arg "Transfer.packetize: payload_size must be >= 5";
  let length = String.length message in
  let total = 4 + length in
  let packets = (total + payload_size - 1) / payload_size in
  let buffer = Bytes.make (packets * payload_size) '\000' in
  Bytes.set_int32_be buffer 0 (Int32.of_int length);
  Bytes.blit_string message 0 buffer 4 length;
  Array.init packets (fun i -> Bytes.sub buffer (i * payload_size) payload_size)

let reassemble ~payload_size packets =
  if Array.length packets = 0 then invalid_arg "Transfer.reassemble: no packets";
  Array.iter
    (fun p ->
      if Bytes.length p <> payload_size then
        invalid_arg "Transfer.reassemble: packet size mismatch")
    packets;
  let buffer = Bytes.concat Bytes.empty (Array.to_list packets) in
  let length = Int32.to_int (Bytes.get_int32_be buffer 0) in
  if length < 0 || length > Bytes.length buffer - 4 then
    invalid_arg "Transfer.reassemble: corrupt length prefix";
  Bytes.sub_string buffer 4 length

let validate ~context ~virtual_start profile message =
  match Profile.validate ~context profile with
  | Error _ as e -> e
  | Ok p ->
    if String.length message = 0 then Error.invalid_arg ~context "empty message"
    else if p.Profile.payload_size < 5 then
      Error.invalid_arg ~context "payload_size must be >= 5 (4-byte length prefix)"
    else if virtual_start < 0.0 then Error.invalid_arg ~context "negative start time"
    else Ok p

let validate_churn ~context ~virtual_start ~network churn =
  let receivers = Rmc_sim.Network.receivers network in
  let rec check = function
    | [] -> Ok ()
    | ev :: rest ->
      if ev.Rmc_proto.Np.Mux.receiver < 0 || ev.Rmc_proto.Np.Mux.receiver >= receivers then
        Error.msgf ~context "churn event targets receiver %d outside 0..%d"
          ev.Rmc_proto.Np.Mux.receiver (receivers - 1)
        |> Result.error
      else if ev.Rmc_proto.Np.Mux.at < virtual_start then
        Error.msgf ~context "churn event at %g predates the transfer start %g"
          ev.Rmc_proto.Np.Mux.at virtual_start
        |> Result.error
      else check rest
  in
  check churn

let outcome_of_report ~message_len (report : Rmc_proto.Np.report) =
  let payload_packets = report.Rmc_proto.Np.data_tx + report.Rmc_proto.Np.parity_tx in
  let bytes_sent = payload_packets * report.Rmc_proto.Np.config.Rmc_proto.Np.payload_size in
  {
    report;
    bytes_sent;
    efficiency = float_of_int message_len /. float_of_int bytes_sent;
    verified =
      report.Rmc_proto.Np.delivered_intact && report.Rmc_proto.Np.ejected = [];
  }

let send ?(profile = Profile.default) ?(virtual_start = 0.0) ?(churn = []) ~network ~rng
    message =
  let context = "Transfer.send" in
  match validate ~context ~virtual_start profile message with
  | Error _ as e -> e
  | Ok profile -> (
    match validate_churn ~context ~virtual_start ~network churn with
    | Error _ as e -> e
    | Ok () ->
      let data = packetize ~payload_size:profile.Profile.payload_size message in
      let config = Rmc_proto.Np.config_of_profile profile in
      let report =
        match churn with
        | [] -> Rmc_proto.Np.run ~config ~start:virtual_start ~network ~rng ~data ()
        | churn ->
          let mux = Rmc_proto.Np.Mux.create (Rmc_sim.Engine.create ()) in
          let flow =
            Rmc_proto.Np.Mux.add_flow mux ~config ~start:virtual_start ~churn ~network
              ~rng ~data ()
          in
          Rmc_proto.Np.Mux.run mux;
          Rmc_proto.Np.Mux.report flow
      in
      Ok (outcome_of_report ~message_len:(String.length message) report))

let send_exn ?profile ?virtual_start ?churn ~network ~rng message =
  Error.get_exn (send ?profile ?virtual_start ?churn ~network ~rng message)
