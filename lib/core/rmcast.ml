(** Parity-based loss recovery for reliable multicast.

    Umbrella module: re-exports every layer of the library under one roof
    and hosts the high-level {!Transfer} and {!Planner} APIs.

    {2 Layers}

    - {!Gf}, {!Gmatrix}: Galois-field arithmetic and linear algebra.
    - {!Codec}, {!Rse}, {!Rse_poly}, {!Cauchy}, {!Rlnc}, {!Lt},
      {!Fec_block}, {!Interleaver}: the pluggable erasure-codec seam, its
      four implementations (Reed-Solomon, Cauchy, random linear network
      coding, LT fountain) and block bookkeeping.
    - {!Rng}, {!Dist}, {!Sampler}, {!Series}, {!Special}, {!Stats}:
      numerics.
    - {!Arq}, {!Layered}, {!Integrated}, {!Rounds}, {!Endhost},
      {!Receivers}, {!Sweep}: the paper's closed-form models.
    - {!Engine}, {!Loss}, {!Network}, {!Topology}, {!Event_queue}: the
      discrete-event simulator.
    - {!Np}, {!N2}, {!Runner}, {!Tg_arq}, {!Tg_layered}, {!Tg_integrated},
      {!Timing}, {!Tg_result}: protocol machines.
    - {!Np_machine}, {!Np_replay}: the sans-IO NP core (pure events in,
      effects out) and deterministic replay of captured runs.
    - {!Header}: the wire format.
    - {!Buffer_pool}: pooled datagram buffers for the allocation-lean
      packet datapath both NP drivers run on.
    - {!Metrics}, {!Event_trace}, {!Fault}, {!Recorder}: observability,
      fault injection and event/effect capture.
    - {!Planner}, {!Controller}: the control plane — one-shot parameter
      planning and the online estimator that retunes it mid-transfer.
    - {!Transfer}: the ten-line user path.

    {2 Quickstart}

    {[
      let rng = Rmcast.Rng.create ~seed:42 () in
      let network = Rmcast.Network.independent rng ~receivers:1000 ~p:0.01 in
      let outcome = Rmcast.Transfer.send_exn ~network ~rng "hello, multicast" in
      assert outcome.Rmcast.Transfer.verified
    ]}

    Configuration enters through exactly one record, {!Profile}; errors
    leave through exactly one type, {!Error} (every entry point has a
    [result] form and an [_exn] form).  {!Scheduler} interleaves many
    sessions over one engine. *)

(* Unified configuration and errors *)
module Profile = Rmc_core.Profile
module Error = Rmc_core.Error

(* Codec *)
module Gf = Rmc_gf.Gf
module Gmatrix = Rmc_matrix.Gmatrix
module Codec = Rmc_rse.Codec
module Rse = Rmc_rse.Rse
module Rse_poly = Rmc_rse.Rse_poly
module Cauchy = Rmc_rse.Cauchy
module Rlnc = Rmc_rse.Rlnc
module Lt = Rmc_rse.Lt
module Parallel = Rmc_rse.Parallel
module Fec_block = Rmc_rse.Fec_block
module Interleaver = Rmc_rse.Interleaver

(* Numerics *)
module Rng = Rmc_numerics.Rng
module Dist = Rmc_numerics.Dist
module Sampler = Rmc_numerics.Sampler
module Series = Rmc_numerics.Series
module Special = Rmc_numerics.Special
module Stats = Rmc_numerics.Stats

(* Analysis *)
module Receivers = Rmc_analysis.Receivers
module Arq = Rmc_analysis.Arq
module Layered = Rmc_analysis.Layered
module Integrated = Rmc_analysis.Integrated
module Rounds = Rmc_analysis.Rounds
module Endhost = Rmc_analysis.Endhost
module Latency = Rmc_analysis.Latency
module Feedback = Rmc_analysis.Feedback
module Endhost_n1 = Rmc_analysis.Endhost_n1
module Hierarchy = Rmc_analysis.Hierarchy
module Sweep = Rmc_analysis.Sweep

(* Simulator *)
module Engine = Rmc_sim.Engine
module Event_queue = Rmc_sim.Event_queue
module Loss = Rmc_sim.Loss
module Topology = Rmc_sim.Topology
module Tree = Rmc_sim.Tree
module Trace_io = Rmc_sim.Trace_io
module Network = Rmc_sim.Network
module Aggregate = Rmc_sim.Aggregate

(* Protocols *)
module Timing = Rmc_proto.Timing
module Tg_result = Rmc_proto.Tg_result
module Tg_arq = Rmc_proto.Tg_arq
module Tg_layered = Rmc_proto.Tg_layered
module Tg_integrated = Rmc_proto.Tg_integrated
module Tg_coded = Rmc_proto.Tg_coded
module Tg_carousel = Rmc_proto.Tg_carousel
module Runner = Rmc_proto.Runner
module Tg_aggregate = Rmc_proto.Tg_aggregate
module Np = Rmc_proto.Np
module Np_machine = Rmc_proto.Np_machine
module Np_aggregate = Rmc_proto.Np_aggregate
module Np_replay = Rmc_proto.Np_replay
module N2 = Rmc_proto.N2
module N1 = Rmc_proto.N1

(* Wire *)
module Header = Rmc_wire.Header

(* Packet datapath *)
module Buffer_pool = Rmc_pool.Buffer_pool

(* Observability *)
module Metrics = Rmc_obs.Metrics
module Event_trace = Rmc_obs.Trace
module Fault = Rmc_obs.Fault
module Recorder = Rmc_obs.Recorder

(* Real-socket transport *)
module Reactor = Rmc_transport.Reactor
module Udp_np = Rmc_transport.Udp_np
module Udp_batch = Rmc_transport.Udp_batch
module Udp_multicast = Rmc_transport.Udp_multicast

(* Control plane *)
module Planner = Rmc_control.Planner
module Controller = Rmc_control.Controller

(* High-level API *)
module Transfer = Transfer
module Session = Session
module Scheduler = Scheduler
