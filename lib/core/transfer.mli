(** High-level reliable multicast transfer.

    Wraps protocol {!Rmc_proto.Np}: takes an arbitrary byte string, chunks
    it into fixed-size packets (padding the last one), groups packets into
    TGs and runs the full NP machine over a simulated lossy network.  This
    is the ten-line path from "I have a file and a receiver population" to
    the paper's protocol.

    Configuration is an {!Rmc_core.Profile.t}; {!send} validates it and
    returns [(outcome, Error.t) result] — {!send_exn} is the raising
    variant for tests and scripts. *)

type outcome = {
  report : Rmc_proto.Np.report;  (** full protocol counters *)
  bytes_sent : int;  (** payload bytes multicast, parities included *)
  efficiency : float;  (** user bytes / payload bytes multicast *)
  verified : bool;  (** every receiver reassembled the exact input *)
}

val send :
  ?profile:Rmc_core.Profile.t ->
  ?virtual_start:float ->
  ?churn:Rmc_proto.Np.Mux.churn_event list ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  string ->
  (outcome, Rmc_core.Error.t) result
(** [virtual_start] (default 0) offsets the session in virtual time so
    that several sends can share one network (see {!Rmc_proto.Np.run}).
    [churn] (default none) schedules receiver membership changes — see
    {!Rmc_proto.Np.Mux.add_flow}; the outcome's [verified] then covers the
    receivers present at the end of the run.  Returns [Error] (context
    ["Transfer.send"]) on an invalid profile, an empty message, a payload
    size too small for the length prefix, a negative start, or a churn
    event that is out of range or predates the start — never raises on bad
    input. *)

val send_exn :
  ?profile:Rmc_core.Profile.t ->
  ?virtual_start:float ->
  ?churn:Rmc_proto.Np.Mux.churn_event list ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  string ->
  outcome
(** @raise Invalid_argument where {!send} would return [Error]. *)

val outcome_of_report : message_len:int -> Rmc_proto.Np.report -> outcome
(** Derive the byte accounting and verification flag from a raw NP report —
    how {!send} (and the {!Scheduler}) summarise a finished flow. *)

val packetize : payload_size:int -> string -> Bytes.t array
(** Split (and zero-pad) a message into payload-sized packets with a 4-byte
    length prefix in the first packet, as {!send} does.
    @raise Invalid_argument if [payload_size < 5]. *)

val reassemble : payload_size:int -> Bytes.t array -> string
(** Inverse of {!packetize}. @raise Invalid_argument on malformed input. *)
