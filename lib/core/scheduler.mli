(** Many sessions, one engine.

    A scheduler interleaves N independent NP transfers ({e sessions}) over
    one shared simulated network in virtual time: every session is a flow
    of the reentrant {!Rmc_proto.Np.Mux}, the shared send slot is arbitrated
    round-robin across sessions with pending packets, and — because all
    flows draw losses from the same {!Rmc_sim.Network} with non-decreasing
    timestamps — temporally correlated loss (bursts) spans session
    boundaries exactly as it does for one long-lived session.

    Contrast with {!Session}, which runs its objects {e sequentially}: a
    scheduler's sessions compete for the bottleneck concurrently, so the
    makespan of N sessions is far below N back-to-back transfers while
    every session still byte-verifies independently. *)

type t

val create :
  ?delay:float ->
  ?profile:Rmc_core.Profile.t ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  unit ->
  (t, Rmc_core.Error.t) result
(** [delay] is the simulated one-way latency (default
    {!Rmc_proto.Np.default_config}[.delay]); [profile] the default profile
    for {!add} (default {!Rmc_core.Profile.default}).  Returns [Error]
    (context ["Scheduler.create"]) on an invalid profile or negative
    delay. *)

val create_exn :
  ?delay:float ->
  ?profile:Rmc_core.Profile.t ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  unit ->
  t
(** @raise Invalid_argument where {!create} would return [Error]. *)

val add :
  t ->
  ?profile:Rmc_core.Profile.t ->
  ?start:float ->
  name:string ->
  string ->
  (unit, Rmc_core.Error.t) result
(** Register a session transferring one payload, entering the send rotation
    at virtual time [start] (default 0).  Each session may carry its own
    profile (default: the scheduler's).  Returns [Error] (context
    ["Scheduler.add"]) on an invalid profile, empty payload, undersized
    [payload_size] or negative start. *)

val add_exn :
  t -> ?profile:Rmc_core.Profile.t -> ?start:float -> name:string -> string -> unit
(** @raise Invalid_argument where {!add} would return [Error]. *)

val sessions : t -> int
(** Number of sessions registered so far. *)

type result_ = {
  name : string;
  outcome : Transfer.outcome;  (** per-session counters + verification *)
  started_at : float;  (** virtual time the session joined the rotation *)
  finished_at : float;  (** virtual time of the session's last event *)
}

type summary = {
  results : result_ list;  (** in {!add} order *)
  all_verified : bool;
  total_bytes : int;  (** user bytes across sessions *)
  total_bytes_sent : int;  (** payload bytes on the wire *)
  makespan : float;  (** virtual time until the last session drained *)
}

val run : ?metrics:Rmc_obs.Metrics.t -> t -> summary
(** Run every registered session to completion on one fresh engine.
    All inputs were validated at {!create}/{!add}, so [run] is total.

    When [metrics] is given, each session's counters are recorded under a
    [session.<index>.] scope ([tx.data], [tx.parity], [naks.sent], ...,
    [verified]) plus the aggregate [scheduler.sessions] counter and
    [scheduler.makespan] gauge — the per-scope counters sum to the global
    totals in the returned {!summary}. *)
