(** Multi-object reliable multicast sessions.

    A session distributes a set of named objects (files, metadata blobs,
    ...) to the same receiver population over one shared network, running
    protocol NP once per object with virtual time carried across objects —
    so temporally correlated loss (bursts) spans object boundaries exactly
    as it would in a long-lived deployment.

    Objects within one session are sequential (each waits for the previous
    object to finish).  To interleave {e independent} sessions over one
    network in virtual time, hand them to a {!Scheduler}. *)

type t

val create :
  ?profile:Rmc_core.Profile.t -> ?gap:float -> unit -> (t, Rmc_core.Error.t) result
(** [gap] (default 0.1 s of virtual time) separates consecutive objects.
    Returns [Error] (context ["Session.create"]) on an invalid profile or a
    negative gap. *)

val create_exn : ?profile:Rmc_core.Profile.t -> ?gap:float -> unit -> t
(** @raise Invalid_argument where {!create} would return [Error]. *)

val profile : t -> Rmc_core.Profile.t

val enqueue : t -> name:string -> string -> (unit, Rmc_core.Error.t) result
(** Queue an object. Names need not be unique; delivery order is FIFO.
    Returns [Error] (context ["Session.enqueue"]) on an empty payload. *)

val enqueue_exn : t -> name:string -> string -> unit
(** @raise Invalid_argument on an empty payload. *)

val pending : t -> int

type delivery = {
  name : string;
  outcome : Transfer.outcome;
  started_at : float;  (** virtual time the object's first packet left *)
}

type summary = {
  deliveries : delivery list;  (** in transmission order *)
  all_verified : bool;
  total_bytes : int;  (** user bytes across objects *)
  total_bytes_sent : int;  (** payload bytes on the wire *)
  duration : float;  (** virtual end-to-end time *)
}

val run :
  t ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  ?progress:(delivery -> unit) ->
  unit ->
  (summary, Rmc_core.Error.t) result
(** Transfer every queued object in order (draining the queue).  The
    [progress] callback fires after each object completes.  The profile was
    validated at {!create}, so with a drained queue of valid objects this
    returns [Ok]; the [result] keeps the signature total. *)

val run_exn :
  t ->
  network:Rmc_sim.Network.t ->
  rng:Rmc_numerics.Rng.t ->
  ?progress:(delivery -> unit) ->
  unit ->
  summary
(** @raise Invalid_argument where {!run} would return [Error]. *)
