module Profile = Rmc_core.Profile
module Error = Rmc_core.Error

type t = {
  profile : Profile.t;
  gap : float;
  queue : (string * string) Queue.t;
}

let create ?(profile = Profile.default) ?(gap = 0.1) () =
  let context = "Session.create" in
  match Profile.validate ~context profile with
  | Error _ as e -> e
  | Ok profile ->
    if gap < 0.0 then Error.invalid_arg ~context "negative gap"
    else Ok { profile; gap; queue = Queue.create () }

let create_exn ?profile ?gap () = Error.get_exn (create ?profile ?gap ())
let profile t = t.profile

let enqueue t ~name payload =
  if String.length payload = 0 then
    Error.invalid_arg ~context:"Session.enqueue" "empty payload"
  else Ok (Queue.push (name, payload) t.queue)

let enqueue_exn t ~name payload = Error.get_exn (enqueue t ~name payload)
let pending t = Queue.length t.queue

type delivery = { name : string; outcome : Transfer.outcome; started_at : float }

type summary = {
  deliveries : delivery list;
  all_verified : bool;
  total_bytes : int;
  total_bytes_sent : int;
  duration : float;
}

let run t ~network ~rng ?(progress = fun _ -> ()) () =
  let clock = ref 0.0 in
  let deliveries = ref [] in
  let total_bytes = ref 0 in
  let total_sent = ref 0 in
  let verified = ref true in
  let error = ref None in
  while !error = None && not (Queue.is_empty t.queue) do
    let name, payload = Queue.pop t.queue in
    match
      Transfer.send ~profile:t.profile ~virtual_start:!clock ~network ~rng payload
    with
    | Error e -> error := Some e
    | Ok outcome ->
      let delivery = { name; outcome; started_at = !clock } in
      clock := outcome.Transfer.report.Rmc_proto.Np.duration +. t.gap;
      total_bytes := !total_bytes + String.length payload;
      total_sent := !total_sent + outcome.Transfer.bytes_sent;
      if not outcome.Transfer.verified then verified := false;
      deliveries := delivery :: !deliveries;
      progress delivery
  done;
  match !error with
  | Some e -> Error e
  | None ->
    Ok
      {
        deliveries = List.rev !deliveries;
        all_verified = !verified;
        total_bytes = !total_bytes;
        total_bytes_sent = !total_sent;
        duration = Float.max 0.0 (!clock -. t.gap);
      }

let run_exn t ~network ~rng ?progress () =
  Error.get_exn (run t ~network ~rng ?progress ())
