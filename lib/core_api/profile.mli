(** The one user-facing configuration record.

    Before this module existed the stack exposed three near-duplicate
    configuration records ([Transfer.options], [Udp_np.config] and the
    [Runner] keyword soup) that had already drifted apart — different
    defaults for [k]/[h]/[payload_size], pacing only on the UDP path.
    [Profile] is the single record every public entry point consumes:
    [Transfer.send], [Session.create], [Scheduler], [Runner.estimate],
    [Udp_np.run_local]/[run_multi] and the [rmc] CLI.

    A profile describes {e what the sender promises}: FEC geometry
    ([k], [h], [proactive], [pre_encode], [codec]), packetization
    ([payload_size]) and pacing ([pacing], [slot]).  Environment-specific
    knobs — simulated propagation delay, UDP linger/timeout — stay with
    the layer that owns them and are derived per layer
    ([Rmc_proto.Np.config_of_profile],
    [Rmc_transport.Udp_np.config_of_profile]). *)

type codec = [ `Rse | `Cauchy | `Rlnc | `Lt ]
(** The erasure codec behind repair packets.  A structural polymorphic
    variant so it unifies with [Rmc_rse.Codec.kind] without this core
    module depending on the codec library:

    - [`Rse] (default) and [`Cauchy] — MDS block codes over GF(2^8);
      any [k] of the [k + h <= 255] packets decode.
    - [`Rlnc] and [`Lt] — rateless codes; [h] is bounded only by the
      16-bit wire index space, and one repair packet spans the whole TG
      (different receivers repair different losses from the same
      packet). *)

type controller = [ `Static | `Ewma | `Gilbert_aware ]
(** The redundancy control plane.  Structural (like {!codec}) so it
    unifies with [Rmc_control.Controller.kind] without a dependency:

    - [`Static] (default) — the profile's [proactive]/[h] hold for the
      whole transfer; bit-exact with the pre-control-plane behaviour.
    - [`Ewma] — an online loss estimator over the sender's own NAK/POLL
      stream re-runs the planner and retunes [proactive] and the parity
      budget for TGs that have not started yet (the budget can only
      shrink below [h]: FEC blocks are built with [h] parities).
    - [`Gilbert_aware] — [`Ewma] plus a burst-length estimate; the
      proactive tail allowance is widened for loss runs via the §4.2
      two-state calibration. *)

type t = {
  k : int;  (** transmission group size (data packets per FEC block) *)
  h : int;  (** repair budget per TG *)
  proactive : int;  (** repair packets multicast with the initial volley *)
  payload_size : int;  (** bytes of payload per packet *)
  pacing : float;  (** seconds between consecutive packets of one sender *)
  slot : float;  (** NAK slot size Ts (suppression timing) *)
  pre_encode : bool;  (** encode all repair packets before transmission *)
  codec : codec;  (** erasure codec for repair packets *)
  controller : controller;  (** redundancy control plane (default [`Static]) *)
}

val default : t
(** The simulation-path default: k = 20, h = 40, a = 0, 1024-byte
    payloads, 1 ms pacing, 100 ms slots, online encoding, RSE codec. *)

val default_udp : t
(** The loopback-UDP default, sized so sessions finish in well under a
    second: k = 8, h = 16, 512-byte payloads, 0.5 ms pacing, 20 ms
    slots, RSE codec. *)

val codec_to_string : codec -> string
(** Stable lowercase names ("rse", "cauchy", "rlnc", "lt") shared by CLI
    flags and capture metadata; {!codec_of_string} inverts. *)

val codec_of_string : string -> codec option

val controller_to_string : controller -> string
(** Stable lowercase names ("static", "ewma", "gilbert") shared by CLI
    flags and capture metadata; {!controller_of_string} inverts (also
    accepting "gilbert-aware"/"gilbert_aware"). *)

val controller_of_string : string -> controller option

val validate : ?context:string -> t -> (t, Error.t) result
(** Check the cross-field invariants every consumer relies on:
    [1 <= k <= 65535] (wire limit), [h >= 0],
    [0 <= proactive <= h], [payload_size >= 1], [pacing > 0],
    [slot > 0]; plus the codec-dependent budget bound — [k + h <= 255]
    (GF(2^8) codeword positions) for the block codecs, [k + h <= 65536]
    (wire index space) for the rateless ones — and [h >= 1] whenever an
    adaptive controller is selected (with no repair budget there is
    nothing to retune).
    Returns the profile unchanged on success.  [context] names the entry
    point in the error (default ["Profile"]). *)

val validate_exn : ?context:string -> t -> t
(** @raise Invalid_argument when {!validate} would return [Error]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
