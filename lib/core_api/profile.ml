type codec = [ `Rse | `Cauchy | `Rlnc | `Lt ]
type controller = [ `Static | `Ewma | `Gilbert_aware ]

type t = {
  k : int;
  h : int;
  proactive : int;
  payload_size : int;
  pacing : float;
  slot : float;
  pre_encode : bool;
  codec : codec;
  controller : controller;
}

let default =
  {
    k = 20;
    h = 40;
    proactive = 0;
    payload_size = 1024;
    pacing = 0.001;
    slot = 0.100;
    pre_encode = false;
    codec = `Rse;
    controller = `Static;
  }

let default_udp =
  { k = 8; h = 16; proactive = 0; payload_size = 512; pacing = 0.0005; slot = 0.020;
    pre_encode = false; codec = `Rse; controller = `Static }

let codec_to_string = function
  | `Rse -> "rse"
  | `Cauchy -> "cauchy"
  | `Rlnc -> "rlnc"
  | `Lt -> "lt"

let codec_of_string = function
  | "rse" -> Some `Rse
  | "cauchy" -> Some `Cauchy
  | "rlnc" -> Some `Rlnc
  | "lt" -> Some `Lt
  | _ -> None

let controller_to_string = function
  | `Static -> "static"
  | `Ewma -> "ewma"
  | `Gilbert_aware -> "gilbert"

let controller_of_string = function
  | "static" -> Some `Static
  | "ewma" -> Some `Ewma
  | "gilbert" | "gilbert-aware" | "gilbert_aware" -> Some `Gilbert_aware
  | _ -> None

(* GF(2^8) gives 255 codeword positions; the block codecs on both the
   simulator and UDP paths build over that field.  The rateless codecs
   have no codeword length — their repair budget is bounded only by the
   16-bit wire index space (index k + j must encode). *)
let max_codeword = 255
let max_wire_index = 0xFFFF

let codec_is_rateless = function `Rlnc | `Lt -> true | `Rse | `Cauchy -> false

let validate ?(context = "Profile") t =
  let fail fmt = Printf.ksprintf (fun reason -> Error (Error.make ~context reason)) fmt in
  if t.k < 1 then fail "k must be >= 1 (got %d)" t.k
  else if t.k > 0xFFFF then fail "k exceeds the 16-bit wire field (got %d)" t.k
  else if t.h < 0 then fail "h must be >= 0 (got %d)" t.h
  else if t.proactive < 0 || t.proactive > t.h then
    fail "need 0 <= proactive <= h (got proactive=%d, h=%d)" t.proactive t.h
  else if (not (codec_is_rateless t.codec)) && t.k + t.h > max_codeword then
    fail "k + h exceeds %d codeword positions (got %d; a rateless codec lifts this)"
      max_codeword (t.k + t.h)
  else if codec_is_rateless t.codec && t.k + t.h > max_wire_index + 1 then
    fail "k + h exceeds the 16-bit wire index space (got %d)" (t.k + t.h)
  else if t.payload_size < 1 then fail "payload_size must be >= 1 (got %d)" t.payload_size
  else if not (t.pacing > 0.0) then fail "pacing must be positive (got %g)" t.pacing
  else if not (t.slot > 0.0) then fail "slot must be positive (got %g)" t.slot
  else if t.controller <> `Static && t.h < 1 then
    fail "an adaptive controller (%s) needs a repair budget to retune (h = 0)"
      (controller_to_string t.controller)
  else Ok t

let validate_exn ?context t = Error.get_exn (validate ?context t)

let equal a b =
  a.k = b.k && a.h = b.h && a.proactive = b.proactive && a.payload_size = b.payload_size
  && a.pacing = b.pacing && a.slot = b.slot && a.pre_encode = b.pre_encode
  && a.codec = b.codec && a.controller = b.controller

let pp ppf t =
  Format.fprintf ppf
    "{k=%d; h=%d; proactive=%d; payload=%dB; pacing=%gs; slot=%gs; pre_encode=%b; codec=%s; \
     controller=%s}"
    t.k t.h t.proactive t.payload_size t.pacing t.slot t.pre_encode
    (codec_to_string t.codec)
    (controller_to_string t.controller)

let to_string t = Format.asprintf "%a" pp t
