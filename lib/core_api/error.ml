type t = { context : string; reason : string }

let make ~context reason = { context; reason }
let msgf ~context fmt = Printf.ksprintf (fun reason -> { context; reason }) fmt
let to_string e = e.context ^ ": " ^ e.reason
let pp ppf e = Format.pp_print_string ppf (to_string e)
let get_exn = function Ok v -> v | Error e -> invalid_arg (to_string e)
let invalid_arg ~context reason = Error (make ~context reason)
