(** The library's shared error type.

    Every user-facing entry point ([Transfer.send], [Session.run],
    [Scheduler.run], [Udp_np.run_local], ...) validates its inputs and
    returns [('a, Error.t) result] instead of raising: an error carries the
    [context] (the entry point that rejected the call, ["Transfer.send"])
    and a human-readable [reason] (["empty message"]).

    The [_exn] variants of those entry points raise
    [Invalid_argument (to_string error)] — i.e. exactly the
    ["context: reason"] strings the pre-redesign API raised — so tests and
    quick scripts keep their one-line call sites. *)

type t = { context : string; reason : string }

val make : context:string -> string -> t

val msgf : context:string -> ('a, unit, string, t) format4 -> 'a
(** [msgf ~context fmt ...] formats the reason. *)

val to_string : t -> string
(** ["context: reason"]. *)

val pp : Format.formatter -> t -> unit

val get_exn : ('a, t) result -> 'a
(** Unwrap, raising [Invalid_argument (to_string e)] on [Error e] — the
    bridge the [_exn] entry-point variants are built from. *)

val invalid_arg : context:string -> string -> ('a, t) result
(** [Error (make ~context reason)] — shorthand for validators. *)
