type message =
  | Data of { tg_id : int; k : int; index : int; payload : Bytes.t }
  | Parity of { tg_id : int; k : int; index : int; round : int; payload : Bytes.t }
  | Poll of { tg_id : int; k : int; size : int; round : int }
  | Nak of { tg_id : int; need : int; round : int }
  | Exhausted of { tg_id : int }

let header_size = 26
let magic = "RMCP"
let version = 2
let crc_offset = 22
let tg_id_offset = 6

(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over the whole datagram
   with the checksum field itself treated as zero.  UDP's 16-bit checksum is
   optional and weak; without an application-level check, a corrupted DATA
   payload would decode cleanly and silently poison the FEC block. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_feed_byte crc byte =
  let table = Lazy.force crc_table in
  table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc_feed crc buffer pos len =
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c := crc_feed_byte !c (Bytes.get_uint8 buffer i)
  done;
  !c

(* CRC of the datagram occupying [off, off+len) of [buffer]; [len] must be
   at least [header_size] (callers validate). *)
let datagram_crc_slice buffer ~off ~len =
  let c = ref 0xFFFFFFFF in
  c := crc_feed !c buffer off crc_offset;
  for _ = 1 to 4 do
    c := crc_feed_byte !c 0
  done;
  c := crc_feed !c buffer (off + header_size) (len - header_size);
  !c lxor 0xFFFFFFFF

let datagram_crc buffer = datagram_crc_slice buffer ~off:0 ~len:(Bytes.length buffer)

let type_code = function
  | Data _ -> 1
  | Parity _ -> 2
  | Poll _ -> 3
  | Nak _ -> 4
  | Exhausted _ -> 5

let message_type_name = function
  | Data _ -> "DATA"
  | Parity _ -> "PARITY"
  | Poll _ -> "POLL"
  | Nak _ -> "NAK"
  | Exhausted _ -> "EXHAUSTED"

let set_u16 b off v = Bytes.set_uint16_be b off v
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

let fields = function
  | Data { tg_id; k; index; payload } -> (tg_id, k, index, 0, Some payload)
  | Parity { tg_id; k; index; round; payload } -> (tg_id, k, index, round, Some payload)
  | Poll { tg_id; k; size; round } -> (tg_id, k, size, round, None)
  | Nak { tg_id; need; round } -> (tg_id, 0, need, round, None)
  | Exhausted { tg_id } -> (tg_id, 0, 0, 0, None)

let tg_id = function
  | Data { tg_id; _ } | Parity { tg_id; _ } | Poll { tg_id; _ } | Nak { tg_id; _ }
  | Exhausted { tg_id } ->
    tg_id

(* tg_id and round are full 32-bit wire fields; the bound must match what
   {!decode} can produce or a legitimately decoded message cannot be
   re-encoded (the old cap was 0xFFFFFFF, a 28-bit typo). *)
let validate_ranges ~tg_id ~k ~aux ~round =
  if tg_id < 0 || tg_id > 0xFFFF_FFFF then invalid_arg "Header: tg_id out of range";
  if k < 0 || k > 0xFFFF then invalid_arg "Header: k out of range";
  if aux < 0 || aux > 0xFFFF then invalid_arg "Header: index/need/size out of range";
  if round < 0 || round > 0xFFFF_FFFF then invalid_arg "Header: round out of range"

let encoded_size message =
  header_size
  + (match message with
    | Data { payload; _ } | Parity { payload; _ } -> Bytes.length payload
    | Poll _ | Nak _ | Exhausted _ -> 0)

let encode_into buffer ~off message =
  let tg_id, k, aux, round, payload = fields message in
  validate_ranges ~tg_id ~k ~aux ~round;
  (match message with
  | Data { k; index; _ } when index >= k -> invalid_arg "Header: data index must be < k"
  | _ -> ());
  let payload_len = match payload with Some p -> Bytes.length p | None -> 0 in
  let total = header_size + payload_len in
  if off < 0 || off > Bytes.length buffer - total then
    invalid_arg "Header.encode_into: datagram does not fit the buffer";
  Bytes.blit_string magic 0 buffer off 4;
  Bytes.set_uint8 buffer (off + 4) version;
  Bytes.set_uint8 buffer (off + 5) (type_code message);
  set_u32 buffer (off + tg_id_offset) tg_id;
  set_u16 buffer (off + 10) k;
  set_u16 buffer (off + 12) aux;
  set_u32 buffer (off + 14) round;
  set_u32 buffer (off + 18) payload_len;
  (match payload with
  | Some p -> Bytes.blit p 0 buffer (off + header_size) payload_len
  | None -> ());
  set_u32 buffer (off + crc_offset) (datagram_crc_slice buffer ~off ~len:total);
  total

let encode message =
  (* [encode_into] writes every one of the [encoded_size] bytes, so an
     uninitialized buffer is fine. *)
  let buffer = Bytes.create (encoded_size message) in
  let _ = encode_into buffer ~off:0 message in
  buffer

let reseal_slice buffer ~off ~len =
  if off < 0 || len < header_size || off > Bytes.length buffer - len then
    invalid_arg "Header.reseal: truncated buffer";
  set_u32 buffer (off + crc_offset) (datagram_crc_slice buffer ~off ~len)

let reseal buffer = reseal_slice buffer ~off:0 ~len:(Bytes.length buffer)

let set_tg_id buffer ~off tg_id =
  if tg_id < 0 || tg_id > 0xFFFF_FFFF then invalid_arg "Header.set_tg_id: tg_id out of range";
  if off < 0 || off > Bytes.length buffer - header_size then
    invalid_arg "Header.set_tg_id: truncated buffer";
  set_u32 buffer (off + tg_id_offset) tg_id

(* The slice parser is the datapath's per-packet cost, so it is written
   with an early-exit exception instead of a [Result.bind] chain: the
   success path allocates nothing beyond the message (and, for DATA and
   PARITY, the one unavoidable payload copy out of the caller's reusable
   recv buffer), and every rejection reuses a constant string.  The
   exception never escapes. *)
exception Bad of string

let decode_slice buffer ~off ~len =
  match
    if off < 0 || len < 0 || off > Bytes.length buffer - len then raise (Bad "slice out of bounds");
    if len < header_size then raise (Bad "truncated header");
    if
      not
        (Bytes.get buffer off = 'R'
        && Bytes.get buffer (off + 1) = 'M'
        && Bytes.get buffer (off + 2) = 'C'
        && Bytes.get buffer (off + 3) = 'P')
    then raise (Bad "bad magic");
    if Bytes.get_uint8 buffer (off + 4) <> version then raise (Bad "unsupported version");
    let code = Bytes.get_uint8 buffer (off + 5) in
    let tg_id = get_u32 buffer (off + tg_id_offset) in
    let k = get_u16 buffer (off + 10) in
    let aux = get_u16 buffer (off + 12) in
    let round = get_u32 buffer (off + 14) in
    let payload_len = get_u32 buffer (off + 18) in
    if len <> header_size + payload_len then raise (Bad "length field mismatch");
    if get_u32 buffer (off + crc_offset) <> datagram_crc_slice buffer ~off ~len then
      raise (Bad "checksum mismatch");
    let payload () = Bytes.sub buffer (off + header_size) payload_len in
    match code with
    | 1 ->
      if payload_len = 0 then raise (Bad "DATA without payload");
      if aux >= k then raise (Bad "DATA index not below k");
      Data { tg_id; k; index = aux; payload = payload () }
    | 2 ->
      if payload_len = 0 then raise (Bad "PARITY without payload");
      Parity { tg_id; k; index = aux; round; payload = payload () }
    | 3 ->
      if payload_len <> 0 then raise (Bad "POLL with payload");
      Poll { tg_id; k; size = aux; round }
    | 4 ->
      if payload_len <> 0 then raise (Bad "NAK with payload");
      Nak { tg_id; need = aux; round }
    | 5 ->
      if payload_len <> 0 then raise (Bad "EXHAUSTED with payload");
      Exhausted { tg_id }
    | other -> raise (Bad (Printf.sprintf "unknown message type %d" other))
  with
  | message -> Ok message
  | exception Bad reason -> Error reason

let decode buffer = decode_slice buffer ~off:0 ~len:(Bytes.length buffer)

(* Coalesced frames: one UDP datagram may carry several consecutive
   messages (the batched transport packs a whole tick into one frame).
   [frame_length] reads just enough of the message at [off] — magic,
   version, payload length — to delimit it, so a frame walk is
   [frame_length] + [decode_slice] per message with no second parse of
   the payload. *)
let frame_length buffer ~off ~len =
  if off < 0 || len < 0 || off > Bytes.length buffer - len then Error "slice out of bounds"
  else if len < header_size then Error "truncated header"
  else if
    not
      (Bytes.get buffer off = 'R'
      && Bytes.get buffer (off + 1) = 'M'
      && Bytes.get buffer (off + 2) = 'C'
      && Bytes.get buffer (off + 3) = 'P')
  then Error "bad magic"
  else if Bytes.get_uint8 buffer (off + 4) <> version then Error "unsupported version"
  else begin
    let total = header_size + get_u32 buffer (off + 18) in
    if total > len then Error "truncated message" else Ok total
  end

let equal a b =
  match (a, b) with
  | Data x, Data y ->
    x.tg_id = y.tg_id && x.k = y.k && x.index = y.index && Bytes.equal x.payload y.payload
  | Parity x, Parity y ->
    x.tg_id = y.tg_id && x.k = y.k && x.index = y.index && x.round = y.round
    && Bytes.equal x.payload y.payload
  | Poll x, Poll y -> x.tg_id = y.tg_id && x.k = y.k && x.size = y.size && x.round = y.round
  | Nak x, Nak y -> x.tg_id = y.tg_id && x.need = y.need && x.round = y.round
  | Exhausted x, Exhausted y -> x.tg_id = y.tg_id
  | (Data _ | Parity _ | Poll _ | Nak _ | Exhausted _), _ -> false

let pp ppf message =
  match message with
  | Data { tg_id; k; index; payload } ->
    Format.fprintf ppf "DATA(tg=%d, k=%d, index=%d, %d bytes)" tg_id k index
      (Bytes.length payload)
  | Parity { tg_id; k; index; round; payload } ->
    Format.fprintf ppf "PARITY(tg=%d, k=%d, index=%d, round=%d, %d bytes)" tg_id k index
      round (Bytes.length payload)
  | Poll { tg_id; k; size; round } ->
    Format.fprintf ppf "POLL(tg=%d, k=%d, size=%d, round=%d)" tg_id k size round
  | Nak { tg_id; need; round } -> Format.fprintf ppf "NAK(tg=%d, need=%d, round=%d)" tg_id need round
  | Exhausted { tg_id } -> Format.fprintf ppf "EXHAUSTED(tg=%d)" tg_id
