type message =
  | Data of { tg_id : int; k : int; index : int; payload : Bytes.t }
  | Parity of { tg_id : int; k : int; index : int; round : int; payload : Bytes.t }
  | Poll of { tg_id : int; k : int; size : int; round : int }
  | Nak of { tg_id : int; need : int; round : int }
  | Exhausted of { tg_id : int }

let header_size = 26
let magic = "RMCP"
let version = 2
let crc_offset = 22

(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over the whole datagram
   with the checksum field itself treated as zero.  UDP's 16-bit checksum is
   optional and weak; without an application-level check, a corrupted DATA
   payload would decode cleanly and silently poison the FEC block. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_feed_byte crc byte =
  let table = Lazy.force crc_table in
  table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc_feed crc buffer pos len =
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c := crc_feed_byte !c (Bytes.get_uint8 buffer i)
  done;
  !c

let datagram_crc buffer =
  let c = ref 0xFFFFFFFF in
  c := crc_feed !c buffer 0 crc_offset;
  for _ = 1 to 4 do
    c := crc_feed_byte !c 0
  done;
  c := crc_feed !c buffer header_size (Bytes.length buffer - header_size);
  !c lxor 0xFFFFFFFF

let type_code = function
  | Data _ -> 1
  | Parity _ -> 2
  | Poll _ -> 3
  | Nak _ -> 4
  | Exhausted _ -> 5

let message_type_name = function
  | Data _ -> "DATA"
  | Parity _ -> "PARITY"
  | Poll _ -> "POLL"
  | Nak _ -> "NAK"
  | Exhausted _ -> "EXHAUSTED"

let set_u16 b off v = Bytes.set_uint16_be b off v
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get_u16 = Bytes.get_uint16_be
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

let fields = function
  | Data { tg_id; k; index; payload } -> (tg_id, k, index, 0, Some payload)
  | Parity { tg_id; k; index; round; payload } -> (tg_id, k, index, round, Some payload)
  | Poll { tg_id; k; size; round } -> (tg_id, k, size, round, None)
  | Nak { tg_id; need; round } -> (tg_id, 0, need, round, None)
  | Exhausted { tg_id } -> (tg_id, 0, 0, 0, None)

(* tg_id and round are full 32-bit wire fields; the bound must match what
   {!decode} can produce or a legitimately decoded message cannot be
   re-encoded (the old cap was 0xFFFFFFF, a 28-bit typo). *)
let validate_ranges ~tg_id ~k ~aux ~round =
  if tg_id < 0 || tg_id > 0xFFFF_FFFF then invalid_arg "Header: tg_id out of range";
  if k < 0 || k > 0xFFFF then invalid_arg "Header: k out of range";
  if aux < 0 || aux > 0xFFFF then invalid_arg "Header: index/need/size out of range";
  if round < 0 || round > 0xFFFF_FFFF then invalid_arg "Header: round out of range"

let encode message =
  let tg_id, k, aux, round, payload = fields message in
  validate_ranges ~tg_id ~k ~aux ~round;
  (match message with
  | Data { k; index; _ } when index >= k -> invalid_arg "Header: data index must be < k"
  | _ -> ());
  let payload_len = match payload with Some p -> Bytes.length p | None -> 0 in
  let buffer = Bytes.make (header_size + payload_len) '\000' in
  Bytes.blit_string magic 0 buffer 0 4;
  Bytes.set_uint8 buffer 4 version;
  Bytes.set_uint8 buffer 5 (type_code message);
  set_u32 buffer 6 tg_id;
  set_u16 buffer 10 k;
  set_u16 buffer 12 aux;
  set_u32 buffer 14 round;
  set_u32 buffer 18 payload_len;
  (match payload with
  | Some p -> Bytes.blit p 0 buffer header_size payload_len
  | None -> ());
  set_u32 buffer crc_offset (datagram_crc buffer);
  buffer

let reseal buffer =
  if Bytes.length buffer < header_size then invalid_arg "Header.reseal: truncated buffer";
  set_u32 buffer crc_offset (datagram_crc buffer)

let decode buffer =
  let ( let* ) r f = Result.bind r f in
  let check condition message = if condition then Ok () else Error message in
  let* () = check (Bytes.length buffer >= header_size) "truncated header" in
  let* () = check (Bytes.sub_string buffer 0 4 = magic) "bad magic" in
  let* () = check (Bytes.get_uint8 buffer 4 = version) "unsupported version" in
  let code = Bytes.get_uint8 buffer 5 in
  let tg_id = get_u32 buffer 6 in
  let k = get_u16 buffer 10 in
  let aux = get_u16 buffer 12 in
  let round = get_u32 buffer 14 in
  let payload_len = get_u32 buffer 18 in
  let* () =
    check (Bytes.length buffer = header_size + payload_len) "length field mismatch"
  in
  let* () = check (get_u32 buffer crc_offset = datagram_crc buffer) "checksum mismatch" in
  let payload () = Bytes.sub buffer header_size payload_len in
  match code with
  | 1 ->
    let* () = check (payload_len > 0) "DATA without payload" in
    let* () = check (aux < k) "DATA index not below k" in
    Ok (Data { tg_id; k; index = aux; payload = payload () })
  | 2 ->
    let* () = check (payload_len > 0) "PARITY without payload" in
    Ok (Parity { tg_id; k; index = aux; round; payload = payload () })
  | 3 ->
    let* () = check (payload_len = 0) "POLL with payload" in
    Ok (Poll { tg_id; k; size = aux; round })
  | 4 ->
    let* () = check (payload_len = 0) "NAK with payload" in
    Ok (Nak { tg_id; need = aux; round })
  | 5 ->
    let* () = check (payload_len = 0) "EXHAUSTED with payload" in
    Ok (Exhausted { tg_id })
  | other -> Error (Printf.sprintf "unknown message type %d" other)

let equal a b =
  match (a, b) with
  | Data x, Data y ->
    x.tg_id = y.tg_id && x.k = y.k && x.index = y.index && Bytes.equal x.payload y.payload
  | Parity x, Parity y ->
    x.tg_id = y.tg_id && x.k = y.k && x.index = y.index && x.round = y.round
    && Bytes.equal x.payload y.payload
  | Poll x, Poll y -> x.tg_id = y.tg_id && x.k = y.k && x.size = y.size && x.round = y.round
  | Nak x, Nak y -> x.tg_id = y.tg_id && x.need = y.need && x.round = y.round
  | Exhausted x, Exhausted y -> x.tg_id = y.tg_id
  | (Data _ | Parity _ | Poll _ | Nak _ | Exhausted _), _ -> false

let pp ppf message =
  match message with
  | Data { tg_id; k; index; payload } ->
    Format.fprintf ppf "DATA(tg=%d, k=%d, index=%d, %d bytes)" tg_id k index
      (Bytes.length payload)
  | Parity { tg_id; k; index; round; payload } ->
    Format.fprintf ppf "PARITY(tg=%d, k=%d, index=%d, round=%d, %d bytes)" tg_id k index
      round (Bytes.length payload)
  | Poll { tg_id; k; size; round } ->
    Format.fprintf ppf "POLL(tg=%d, k=%d, size=%d, round=%d)" tg_id k size round
  | Nak { tg_id; need; round } -> Format.fprintf ppf "NAK(tg=%d, need=%d, round=%d)" tg_id need round
  | Exhausted { tg_id } -> Format.fprintf ppf "EXHAUSTED(tg=%d)" tg_id
