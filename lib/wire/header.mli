(** Wire format for protocol NP packets.

    A deployment of NP needs its five message types on the wire; this
    module defines a compact, versioned, big-endian encoding with full
    validation on decode.  The simulator does not use it (it passes OCaml
    values around), but the file-transfer example and any real transport
    binding do.

    Layout (all integers big-endian):
    {v
    offset  size  field
    0       4     magic "RMCP"
    4       1     version (currently 2)
    5       1     message type
    6       4     tg_id
    10      2     k       (data packets in this TG)
    12      2     index / need / size (per message type)
    14      4     round
    18      4     payload length (DATA and PARITY only, else 0)
    22      4     CRC-32 of the whole datagram (this field as zero)
    26      ...   payload
    v}

    The checksum covers header and payload; {!decode} rejects any datagram
    whose stored CRC does not match ([Error "checksum mismatch"]).  Encode
    and decode accept the same field ranges: [tg_id] and [round] are full
    32-bit values, [k] and [index]/[need]/[size] 16-bit. *)

type message =
  | Data of { tg_id : int; k : int; index : int; payload : Bytes.t }
      (** [index] in [0, k). *)
  | Parity of { tg_id : int; k : int; index : int; round : int; payload : Bytes.t }
      (** [index] is the parity number within the FEC block ([>= 0]). *)
  | Poll of { tg_id : int; k : int; size : int; round : int }
      (** [size] = packets sent in the round being polled. *)
  | Nak of { tg_id : int; need : int; round : int }
  | Exhausted of { tg_id : int }

val header_size : int
(** Bytes preceding the payload (26). *)

val encode : message -> Bytes.t
(** @raise Invalid_argument on out-of-range fields ([tg_id], [round] must
    fit 32 bits; [k], [index]/[need]/[size] 16 bits; DATA [index < k]). *)

val decode : Bytes.t -> (message, string) result
(** Total parse-and-validate: never raises; returns a diagnostic on
    malformed input (bad magic, truncation, checksum mismatch,
    out-of-range fields...). *)

val reseal : Bytes.t -> unit
(** Recompute and store the CRC of an encoded datagram in place — for
    tests that hand-mutate header fields and still want the mutation (not
    the checksum) to be what {!decode} rejects.
    @raise Invalid_argument if shorter than {!header_size}. *)

val datagram_crc : Bytes.t -> int
(** The CRC-32 {!decode} expects at offset 22 (checksum field read as
    zero). *)

val message_type_name : message -> string
val pp : Format.formatter -> message -> unit
val equal : message -> message -> bool
