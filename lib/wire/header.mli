(** Wire format for protocol NP packets.

    A deployment of NP needs its five message types on the wire; this
    module defines a compact, versioned, big-endian encoding with full
    validation on decode.  Both drivers of the sans-IO core use it: the
    UDP binding puts these bytes in real datagrams, and the simulator
    routes every packet through the same encoding (see
    {!Rmc_proto.Np.Mux}) so the two stay byte-equivalent by construction.

    Layout (all integers big-endian):
    {v
    offset  size  field
    0       4     magic "RMCP"
    4       1     version (currently 2)
    5       1     message type
    6       4     tg_id
    10      2     k       (data packets in this TG)
    12      2     index / need / size (per message type)
    14      4     round
    18      4     payload length (DATA and PARITY only, else 0)
    22      4     CRC-32 of the whole datagram (this field as zero)
    26      ...   payload
    v}

    The checksum covers header and payload; {!decode} rejects any datagram
    whose stored CRC does not match ([Error "checksum mismatch"]).  Encode
    and decode accept the same field ranges: [tg_id] and [round] are full
    32-bit values, [k] and [index]/[need]/[size] 16-bit.

    {2 Slice API and aliasing contract}

    The allocation-lean datapath works on {e slices} of long-lived
    buffers: {!encode_into} serializes straight into a pooled send buffer
    and {!decode_slice} parses straight out of a reusable recv buffer,
    so the per-datagram cost is one payload copy (DATA/PARITY) or nothing
    at all (control messages) instead of a fresh datagram-sized buffer
    per packet.  The contract:

    - {!encode_into} writes exactly [encoded_size message] bytes at
      [off] and touches nothing else; the caller may reuse the rest of
      the buffer freely.
    - {!decode_slice} reads only [\[off, off+len)] and returns messages
      that do {e not} alias the input: DATA/PARITY payloads are copied
      out, so the caller may overwrite the buffer (e.g. with the next
      datagram) as soon as the call returns.
    - {!set_tg_id} pokes the [tg_id] field of an already-encoded datagram
      in place (the multi-session driver rewrites the session id into the
      upper bits this way) and deliberately leaves the CRC stale; follow
      it with {!reseal_slice}, which re-checksums in place — the datagram
      is never re-materialized. *)

type message =
  | Data of { tg_id : int; k : int; index : int; payload : Bytes.t }
      (** [index] in [0, k). *)
  | Parity of { tg_id : int; k : int; index : int; round : int; payload : Bytes.t }
      (** [index] is the parity number within the FEC block ([>= 0]). *)
  | Poll of { tg_id : int; k : int; size : int; round : int }
      (** [size] = packets sent in the round being polled. *)
  | Nak of { tg_id : int; need : int; round : int }
  | Exhausted of { tg_id : int }

val header_size : int
(** Bytes preceding the payload (26). *)

val encoded_size : message -> int
(** Exact on-the-wire size: {!header_size} plus the payload length. *)

val encode : message -> Bytes.t
(** @raise Invalid_argument on out-of-range fields ([tg_id], [round] must
    fit 32 bits; [k], [index]/[need]/[size] 16 bits; DATA [index < k]). *)

val encode_into : Bytes.t -> off:int -> message -> int
(** [encode_into buffer ~off message] serializes [message] (checksum
    included) into [buffer] starting at [off] and returns the number of
    bytes written ([encoded_size message]).  The bytes written are
    identical to [encode message].
    @raise Invalid_argument on out-of-range fields (as {!encode}) or if
    the datagram does not fit in [buffer] at [off]. *)

val decode : Bytes.t -> (message, string) result
(** Total parse-and-validate: never raises; returns a diagnostic on
    malformed input (bad magic, truncation, checksum mismatch,
    out-of-range fields...). *)

val frame_length : Bytes.t -> off:int -> len:int -> (int, string) result
(** [frame_length buffer ~off ~len] delimits the message starting at
    [off] inside a {e coalesced frame} — a datagram carrying several
    consecutive encoded messages (the batched transport packs a whole
    tick's sends into one frame).  It validates only magic and version,
    then returns [header_size + payload_length] bounded by [len]; feed
    the result to {!decode_slice} and advance by it to walk the frame.
    Never raises; a message whose length field points past [len] is
    [Error "truncated message"]. *)

val decode_slice : Bytes.t -> off:int -> len:int -> (message, string) result
(** [decode_slice buffer ~off ~len] parses the datagram occupying
    [\[off, off+len)] of [buffer], reading nothing outside that range and
    never raising — out-of-bounds slices are an [Error], not an
    exception.  Agrees with [decode (Bytes.sub buffer off len)] on every
    input; DATA/PARITY payloads are copied out of the slice, so the
    buffer may be reused immediately. *)

val reseal : Bytes.t -> unit
(** Recompute and store the CRC of an encoded datagram in place — after
    {!set_tg_id}, or for tests that hand-mutate header fields and still
    want the mutation (not the checksum) to be what {!decode} rejects.
    @raise Invalid_argument if shorter than {!header_size}. *)

val reseal_slice : Bytes.t -> off:int -> len:int -> unit
(** {!reseal} for the datagram occupying [\[off, off+len)] of a longer
    (e.g. pooled) buffer.
    @raise Invalid_argument if the slice is out of bounds or shorter than
    {!header_size}. *)

val set_tg_id : Bytes.t -> off:int -> int -> unit
(** [set_tg_id buffer ~off tg_id] overwrites the [tg_id] field of the
    datagram encoded at [off], leaving the CRC stale — callers must
    {!reseal_slice} before the datagram leaves.
    @raise Invalid_argument if [tg_id] exceeds 32 bits or the slice is
    shorter than a header. *)

val tg_id : message -> int
(** The transmission-group id, whatever the message type. *)

val datagram_crc : Bytes.t -> int
(** The CRC-32 {!decode} expects at offset 22 (checksum field read as
    zero). *)

val message_type_name : message -> string
val pp : Format.formatter -> message -> unit
val equal : message -> message -> bool
