(** Redundancy planning: choose FEC parameters from measured conditions.

    The paper's conclusion warns that adaptive transports which model loss
    as independent will over-provision redundancy under shared loss; this
    module is the constructive counterpart: given a loss estimate and the
    receiver population, pick the proactive parity count and parity budget
    from the §3.2 analysis. *)

type plan = {
  k : int;
  proactive : int;  (** parities to send with every TG (a) *)
  budget : int;  (** parity budget per TG (h) to provision, >= proactive *)
  expected_m : float;  (** predicted E[M] under the plan *)
  single_round_probability : float;
      (** probability that no repair round at all is needed *)
}

val plan :
  k:int ->
  p:float ->
  receivers:int ->
  ?target_single_round:float ->
  ?budget_residual:float ->
  unit ->
  plan
(** [plan ~k ~p ~receivers ()] chooses:
    - [proactive]: the smallest a with
      [P(every receiver decodes from the initial volley) >= target_single_round]
      (default 0.9) — eq. (4) with the group CDF at m = 0;
    - [budget]: the smallest h with [P(L > h) < budget_residual]
      (default 1e-6), i.e. TG regrouping/ejection is negligible;
    - [expected_m]: eq. (6) at the chosen a.

    @raise Invalid_argument for p outside [0, 1) or k/receivers < 1. *)

val loss_estimate : lost:int -> total:int -> float
(** Laplace-smoothed loss-rate estimator [(lost+1)/(total+2)] for feeding
    measurements back into {!plan}. *)

val effective_receivers : measured_m_nofec:float -> p:float -> int
(** The paper's §4.1 observation inverted: shared loss behaves like a
    smaller independent population.  Returns the R whose independent-loss
    no-FEC E[M] matches the measured value (by bisection over R); feed it
    to {!plan} instead of the raw receiver count to avoid over-provisioning
    under spatially correlated loss. *)
