module Analysis = Rmc_analysis

type plan = {
  k : int;
  proactive : int;
  budget : int;
  expected_m : float;
  single_round_probability : float;
}

let plan ~k ~p ~receivers ?(target_single_round = 0.9) ?(budget_residual = 1e-6) () =
  if k < 1 || receivers < 1 then invalid_arg "Planner.plan: k and receivers must be >= 1";
  if p < 0.0 || p >= 1.0 then invalid_arg "Planner.plan: p outside [0,1)";
  if target_single_round <= 0.0 || target_single_round >= 1.0 then
    invalid_arg "Planner.plan: target_single_round outside (0,1)";
  let population = Analysis.Receivers.homogeneous ~p ~count:receivers in
  (* Smallest a such that P(L = 0 | a proactive parities) meets the target.
     a is bounded by k: after k extra parities even a receiver that lost
     every data packet decodes. *)
  let single_round a = Analysis.Integrated.group_extra_cdf ~k ~a ~population 0 in
  let rec find_proactive a =
    if a >= k then k
    else if single_round a >= target_single_round then a
    else find_proactive (a + 1)
  in
  let proactive = find_proactive 0 in
  (* Smallest budget h >= proactive with P(L > h - proactive) below the
     residual: the probability that a TG ever exhausts its parities. *)
  let cdf = Analysis.Integrated.group_extra_cdf ~k ~a:proactive ~population in
  let rec find_budget h =
    if 1.0 -. cdf (h - proactive) < budget_residual then h else find_budget (h + 1)
  in
  let budget = find_budget proactive in
  {
    k;
    proactive;
    budget;
    expected_m =
      Analysis.Integrated.expected_transmissions_unbounded ~k ~a:proactive ~population ();
    single_round_probability = single_round proactive;
  }

let loss_estimate ~lost ~total =
  if lost < 0 || total < lost then invalid_arg "Planner.loss_estimate: need 0 <= lost <= total";
  float_of_int (lost + 1) /. float_of_int (total + 2)

let effective_receivers ~measured_m_nofec ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Planner.effective_receivers: p outside (0,1)";
  let m_of r =
    Analysis.Arq.expected_transmissions
      ~population:(Analysis.Receivers.homogeneous ~p ~count:r)
  in
  if measured_m_nofec <= m_of 1 then 1
  else begin
    (* Bisection over R on the monotone map R -> E[M]. *)
    let rec grow hi = if m_of hi >= measured_m_nofec || hi > 100_000_000 then hi else grow (2 * hi) in
    let hi = grow 2 in
    let rec bisect lo hi =
      if hi - lo <= 1 then if measured_m_nofec -. m_of lo <= m_of hi -. measured_m_nofec then lo else hi
      else begin
        let mid = (lo + hi) / 2 in
        if m_of mid < measured_m_nofec then bisect mid hi else bisect lo mid
      end
    in
    bisect 1 hi
  end
