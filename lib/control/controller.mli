(** Online redundancy control: the estimator half of the control plane.

    The drivers feed the controller what the sender already observes for
    free — every POLL it transmits (volley boundaries and repair volumes)
    and every NAK it receives (worst-case residual loss per round) — and
    read back a {!decision} to apply to not-yet-started TGs via the
    machine's [Retune] event.  The controller never touches the machine
    itself: it is pure bookkeeping, so the Static kind costs nothing and
    the adaptive kinds stay deterministic (observations arrive in event
    order, decisions land in the capture as Retune events).

    Estimators (per session):
    - loss rate p: exponentially decayed pseudo-counts over per-TG samples
      (worst NAK need + absorbed proactive parities, zero for clean TGs),
      with half-count smoothing so the estimate decays geometrically
      through clean stretches instead of snapping to zero;
    - volume E[M]: EWMA of per-TG transmissions-per-packet, inverted
      through {!Planner.effective_receivers} to de-correlate shared loss;
    - burstiness (Gilbert_aware only): index of dispersion of the per-TG
      loss count (D = 2b - 1 for geometric bursts), calibrated through
      {!Rmc_sim.Loss.markov2_parameters}. *)

type kind = [ `Static | `Ewma | `Gilbert_aware ]

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type decision = { proactive : int; budget : int }

val decision_equal : decision -> decision -> bool

type t

val create :
  kind:kind ->
  k:int ->
  h:int ->
  proactive:int ->
  receivers:int ->
  pacing:float ->
  ?alpha:float ->
  ?min_samples:int ->
  ?close_lag:int ->
  unit ->
  t
(** [create ~kind ~k ~h ~proactive ~receivers ~pacing ()] starts a
    controller whose initial decision is the configured [(proactive, h)].
    [h] is also the hard cap: FEC blocks are constructed with [h] parities,
    so a retune can only shrink the budget, never grow it.  [alpha]
    (default 0.125) is the estimator decay per closed TG; [min_samples]
    (default 3) closed TGs are required before the first retune;
    [close_lag] (default 2) TGs of lag give straggling NAKs time to arrive
    before a TG is declared clean.
    @raise Invalid_argument on non-positive [k]/[receivers]/[pacing] or
    [proactive] outside [0, h]. *)

val observe_poll : t -> tg:int -> k:int -> size:int -> round:int -> unit
(** A POLL the sender just transmitted.  Round-1 polls open the TG's
    observation window (and close windows [close_lag] TGs behind the
    frontier); later rounds count [size] repair parities actually sent.
    No-op for [`Static]. *)

val observe_nak : t -> tg:int -> need:int -> round:int -> unit
(** A NAK the sender just received (after its own round de-duplication is
    irrelevant — every NAK is evidence).  No-op for [`Static]. *)

val decision : t -> decision
(** The tuning to apply to TGs that have not started yet.  [`Static]
    always returns the initial decision; adaptive kinds return it until
    [min_samples] TGs have closed, then re-run {!Planner.plan} at the
    estimated (p, effective receivers) point — cached until new samples
    arrive, so calling this after every event is cheap.  The adaptive
    budget is clamped to [h] and floored at [k] plus the planner's
    repair headroom: budget is reserve capacity, not sent parities, and
    a budget under [k] would strand any receiver that missed a whole
    volley — e.g. a late joiner catching up from parity. *)

val initial_decision : t -> decision
val kind : t -> kind

val samples : t -> int
(** Closed-TG samples absorbed so far. *)

val retunes : t -> int
(** How many times {!decision} changed value. *)

val p_hat : t -> float
(** Current loss-rate estimate (0 until the first sample). *)

val m_hat : t -> float
(** Current transmissions-per-packet estimate (0 until the first sample). *)

val burst_hat : t -> float
(** Current mean-burst-length estimate (1 = independent losses). *)
