module Loss = Rmc_sim.Loss

type kind = [ `Static | `Ewma | `Gilbert_aware ]

let kind_to_string = function
  | `Static -> "static"
  | `Ewma -> "ewma"
  | `Gilbert_aware -> "gilbert"

let kind_of_string = function
  | "static" -> Some `Static
  | "ewma" -> Some `Ewma
  | "gilbert" | "gilbert-aware" | "gilbert_aware" -> Some `Gilbert_aware
  | _ -> None

type decision = { proactive : int; budget : int }

let decision_equal a b = a.proactive = b.proactive && a.budget = b.budget

(* Per-TG observation window, opened by the round-1 poll (the volley
   boundary) and closed a few TGs later so straggling NAKs have time to
   arrive before we declare the TG clean. *)
type tg_obs = {
  tg_k : int;  (* data packets in the TG, from the poll header *)
  first_size : int;  (* round-1 volley size: tg_k + proactive at materialization *)
  mutable extras : int;  (* repair parities actually transmitted (round >= 2 polls) *)
  mutable worst_need : int;  (* largest round-1 need reported, 0 if clean so far *)
  mutable nak_seen : bool;
}

type t = {
  kind : kind;
  k : int;
  h_cap : int;  (* blocks are built with h parities; budget can only shrink *)
  receivers : int;
  pacing : float;
  alpha : float;
  min_samples : int;
  close_lag : int;
  initial : decision;
  (* Exponentially decayed pseudo-counts: p_hat = lost / total with
     half-count smoothing, so a run of clean TGs decays the estimate
     geometrically instead of snapping to zero. *)
  mutable lost_acc : float;
  mutable total_acc : float;
  mutable m_hat : float;  (* EWMA of per-TG transmissions-per-packet *)
  (* First and second moments of the per-TG loss count: the index of
     dispersion D = Var/Mean separates independent loss (D ~ 1) from
     bursty loss (D ~ 2b - 1 for mean burst length b). *)
  mutable loss_mean : float;
  mutable loss_sq : float;
  mutable samples : int;
  mutable dirty : bool;
  mutable cached : decision;
  mutable retunes : int;
  open_tgs : (int, tg_obs) Hashtbl.t;
  mutable frontier : int;  (* highest TG whose round-1 poll was observed *)
}

let create ~kind ~k ~h ~proactive ~receivers ~pacing ?(alpha = 0.125)
    ?(min_samples = 3) ?(close_lag = 2) () =
  if k < 1 then invalid_arg "Controller.create: k must be >= 1";
  if h < 0 || proactive < 0 || proactive > h then
    invalid_arg "Controller.create: need 0 <= proactive <= h";
  if receivers < 1 then invalid_arg "Controller.create: receivers must be >= 1";
  if pacing <= 0.0 then invalid_arg "Controller.create: pacing must be positive";
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Controller.create: alpha outside (0,1]";
  let initial = { proactive; budget = h } in
  {
    kind;
    k;
    h_cap = h;
    receivers;
    pacing;
    alpha;
    min_samples;
    close_lag = max 0 close_lag;
    initial;
    lost_acc = 0.0;
    total_acc = 0.0;
    m_hat = 0.0;
    loss_mean = 0.0;
    loss_sq = 0.0;
    samples = 0;
    dirty = false;
    cached = initial;
    retunes = 0;
    open_tgs = Hashtbl.create 16;
    frontier = -1;
  }

let kind t = t.kind
let samples t = t.samples
let retunes t = t.retunes
let initial_decision t = t.initial

let p_hat t =
  if t.samples = 0 then 0.0
  else (t.lost_acc +. 0.5) /. (t.total_acc +. 1.0)

let m_hat t = t.m_hat

let burst_hat t =
  if t.samples = 0 then 1.0
  else begin
    let mean = t.loss_mean and sq = t.loss_sq in
    let var = Float.max 0.0 (sq -. (mean *. mean)) in
    if mean < 1e-9 then 1.0
    else
      (* D = 2b - 1 for geometric bursts of mean length b. *)
      Float.max 1.0 ((var /. mean +. 1.0) /. 2.0)
  end

let ewma alpha prev x = ((1.0 -. alpha) *. prev) +. (alpha *. x)

(* Close the observation window for [tg]: one loss/volume sample per TG. *)
let close t tg =
  match Hashtbl.find_opt t.open_tgs tg with
  | None -> ()
  | Some o ->
    Hashtbl.remove t.open_tgs tg;
    let a = o.first_size - o.tg_k in
    (* The worst receiver's need under-counts its losses by the proactive
       parities it absorbed; clean TGs contribute zero (a slight
       underestimate — losses up to [a] are invisible by design). *)
    let lost = if o.nak_seen then float_of_int (o.worst_need + a) else 0.0 in
    let total = float_of_int (o.first_size + o.extras) in
    let decay = 1.0 -. t.alpha in
    t.lost_acc <- (decay *. t.lost_acc) +. lost;
    t.total_acc <- (decay *. t.total_acc) +. total;
    let m_sample = total /. float_of_int (max 1 o.tg_k) in
    t.m_hat <- (if t.samples = 0 then m_sample else ewma t.alpha t.m_hat m_sample);
    t.loss_mean <-
      (if t.samples = 0 then lost else ewma t.alpha t.loss_mean lost);
    t.loss_sq <-
      (if t.samples = 0 then lost *. lost
       else ewma t.alpha t.loss_sq (lost *. lost));
    t.samples <- t.samples + 1;
    t.dirty <- true

let observe_poll t ~tg ~k ~size ~round =
  if t.kind <> `Static then begin
    if round <= 1 then begin
      if not (Hashtbl.mem t.open_tgs tg) then begin
        Hashtbl.replace t.open_tgs tg
          { tg_k = k; first_size = size; extras = 0; worst_need = 0; nak_seen = false };
        if tg > t.frontier then t.frontier <- tg;
        (* The round-1 poll of TG n closes TG n - lag: by then any NAK for
           it has long since crossed the (much shorter) feedback path. *)
        let cutoff = t.frontier - t.close_lag in
        Hashtbl.iter (fun id _ -> if id <= cutoff then close t id)
          (Hashtbl.copy t.open_tgs)
      end
    end
    else
      match Hashtbl.find_opt t.open_tgs tg with
      | Some o -> o.extras <- o.extras + size
      | None -> ()
  end

let observe_nak t ~tg ~need ~round =
  if t.kind <> `Static then
    match Hashtbl.find_opt t.open_tgs tg with
    | None -> ()
    | Some o ->
      o.nak_seen <- true;
      if round <= 1 && need > o.worst_need then o.worst_need <- need

(* Burst-aware proactive inflation: calibrate a two-state chain at the
   estimated (p, burst) point and widen the tail allowance by the run-length
   factor sqrt((1+c)/(1-c)), c the per-packet loss-run continuation
   probability.  Falls back to the Ewma plan when the calibration is
   infeasible (mean_burst too short for the loss rate). *)
let gilbert_inflate t ~p ~(plan : Planner.plan) =
  let b = burst_hat t in
  if b <= 1.0 +. 1e-9 then plan.Planner.proactive
  else
    match
      Loss.markov2_parameters ~p ~mean_burst:b ~send_rate:(1.0 /. t.pacing)
    with
    | exception Invalid_argument _ -> plan.Planner.proactive
    | mu01, mu10 ->
      let c =
        Loss.transition_to_bad_probability ~mu01 ~mu10 ~from_state:1 t.pacing
      in
      if c >= 1.0 -. 1e-9 then plan.Planner.proactive
      else begin
        let n = float_of_int (t.k + plan.Planner.proactive) in
        let mean = n *. p in
        let tail = Float.max 0.0 (float_of_int plan.Planner.proactive -. mean) in
        let inflate = sqrt ((1.0 +. c) /. (1.0 -. c)) in
        let a = int_of_float (ceil (mean +. (tail *. inflate))) in
        max plan.Planner.proactive (min a t.k)
      end

let decision t =
  match t.kind with
  | `Static -> t.initial
  | `Ewma | `Gilbert_aware ->
    if t.samples < t.min_samples then t.initial
    else if not t.dirty then t.cached
    else begin
      let p = Float.max 1e-4 (Float.min 0.5 (p_hat t)) in
      let r_eff =
        if t.receivers <= 1 then 1
        else begin
          (* m_hat measures with-FEC transmissions, so inverting it through
             the no-FEC E[M] map under-counts receivers — erring toward
             *less* redundancy, the conservative direction under shared
             loss (paper §4.1). *)
          let m = Float.max 1.0 t.m_hat in
          max 1 (min t.receivers (Planner.effective_receivers ~measured_m_nofec:m ~p))
        end
      in
      let plan = Planner.plan ~k:t.k ~p ~receivers:r_eff () in
      let proactive =
        match t.kind with
        | `Gilbert_aware -> gilbert_inflate t ~p ~plan
        | _ -> plan.Planner.proactive
      in
      let proactive = min proactive t.h_cap in
      (* Budget only caps on-demand repair, so shrinking it saves nothing;
         keep the planner's exhaustion-safe h (doubled, as lag headroom)
         on top of a full volley's worth — a budget under k makes a
         fully-missed volley (a late joiner's catch-up, one long loss
         burst) undecodable from parity alone, and a joiner then loses
         repair packets like anyone else. *)
      let budget = min t.h_cap (t.k + max proactive (2 * plan.Planner.budget)) in
      let d = { proactive; budget } in
      if not (decision_equal d t.cached) then t.retunes <- t.retunes + 1;
      t.cached <- d;
      t.dirty <- false;
      d
    end
