(* rmc — command-line front end to the rmcast library.

   Subcommands:
     analyze   closed-form E[M] for a scheme (paper §3)
     sweep     E[M] series over the receiver count (CSV-able)
     simulate  Monte-Carlo estimate over a simulated network
     plan      adaptive redundancy planning (proactive parities + budget)
     endhost   §5 processing rates and throughput (N2 vs NP)
     codec     file-level FEC: encode a file into packets, decode with drops
     latency   expected completion time of the schemes
     feedback  NAK volume under slotting and damping
     capacity  largest group each protocol can serve
     transfer  run a full NP transfer over a simulated network
     serve     run N concurrent sessions over one engine (sim or UDP)
     udp       run NP over real UDP sockets on loopback
     replay    re-execute a captured UDP run through the sans-IO core
     trace     record and inspect packet-loss traces *)

open Cmdliner

(* --- shared options -------------------------------------------------- *)

let k_arg =
  Arg.(value & opt int 7 & info [ "k"; "tg-size" ] ~docv:"K" ~doc:"Transmission group size.")

let h_arg =
  Arg.(value & opt int 1 & info [ "parities" ] ~docv:"H" ~doc:"Parity packets per group.")

let a_arg =
  Arg.(value & opt int 0 & info [ "proactive" ] ~docv:"A" ~doc:"Proactive parity packets.")

let p_arg =
  Arg.(value & opt float 0.01 & info [ "p"; "loss" ] ~docv:"P" ~doc:"Packet loss probability.")

let receivers_arg =
  Arg.(value & opt int 1000 & info [ "r"; "receivers" ] ~docv:"R" ~doc:"Number of receivers.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains to run the work on. Results are independent of N: grid cells and \
           replication chunks derive their seeds from their coordinates, never from \
           the schedule, so any job count produces identical output.")

let scheme_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "no-fec" | "nofec" | "arq" -> Ok `No_fec
    | "layered" -> Ok `Layered
    | "integrated" -> Ok `Integrated
    | "integrated-bound" | "bound" -> Ok `Integrated_bound
    | other -> Error (`Msg (Printf.sprintf "unknown scheme %S" other))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | `No_fec -> "no-fec"
      | `Layered -> "layered"
      | `Integrated -> "integrated"
      | `Integrated_bound -> "integrated-bound")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Integrated_bound
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Recovery scheme: no-fec, layered, integrated (finite h), integrated-bound.")

let codec_arg =
  let parse s =
    match Rmcast.Profile.codec_of_string (String.lowercase_ascii s) with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown codec %S (rse, cauchy, rlnc, lt)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Rmcast.Profile.codec_to_string c) in
  Arg.(
    value
    & opt (conv (parse, print)) `Rse
    & info [ "codec" ] ~docv:"CODEC"
        ~doc:
          "Erasure codec for repair packets: $(i,rse) (default), $(i,cauchy) (both MDS \
           block codes), $(i,rlnc) or $(i,lt) (rateless).")

let controller_arg =
  let parse s =
    match Rmcast.Profile.controller_of_string (String.lowercase_ascii s) with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown controller %S (static, ewma, gilbert)" s))
  in
  let print ppf c = Format.pp_print_string ppf (Rmcast.Profile.controller_to_string c) in
  Arg.(
    value
    & opt (conv (parse, print)) `Static
    & info [ "controller" ] ~docv:"CONTROLLER"
        ~doc:
          "Redundancy control plane: $(i,static) (default; the construction-time plan, \
           bit-exact with the pre-control-plane behaviour), $(i,ewma) (EWMA loss \
           estimator retunes proactive parities and budget online), or $(i,gilbert) \
           (burst-aware: inflates the proactive tail from the measured loss-run \
           dispersion).")

(* Churn specs: comma-separated "join:RX@T" / "leave:RX@T" events, e.g.
   "leave:2@0.5,join:5@1.2,join:2@2.0" (receiver 2 flaps, receiver 5 is a
   late joiner). *)
let churn_of_string spec =
  let parse_event item =
    match String.index_opt item ':' with
    | None -> Error (Printf.sprintf "%S: expected join:RX@T or leave:RX@T" item)
    | Some colon -> (
      let action =
        match String.sub item 0 colon with
        | "join" -> Ok `Join
        | "leave" -> Ok `Leave
        | other -> Error (Printf.sprintf "%S: unknown action %S" item other)
      in
      match action with
      | Error _ as e -> e
      | Ok action -> (
        let rest = String.sub item (colon + 1) (String.length item - colon - 1) in
        match String.index_opt rest '@' with
        | None -> Error (Printf.sprintf "%S: missing @TIME" item)
        | Some at_sign -> (
          let rx = String.sub rest 0 at_sign in
          let time = String.sub rest (at_sign + 1) (String.length rest - at_sign - 1) in
          match (int_of_string_opt rx, float_of_string_opt time) with
          | Some receiver, Some at when receiver >= 0 && at >= 0.0 ->
            Ok { Rmcast.Np.Mux.receiver; at; action }
          | _ -> Error (Printf.sprintf "%S: bad receiver or time" item))))
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest -> (
      match parse_event item with
      | Error _ as e -> e
      | Ok ev -> collect (ev :: acc) rest)
  in
  collect [] (String.split_on_char ',' spec)

let churn_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "churn" ] ~docv:"SPEC"
        ~doc:
          "Receiver membership churn: comma-separated $(i,join:RX@T) / \
           $(i,leave:RX@T) events in virtual seconds, e.g. \
           leave:2@0.5,join:5@1.2,join:2@2.0. A receiver whose earliest \
           event is a join starts absent and catches up from parity repair.")

let high_loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "high-loss-fraction" ] ~docv:"F"
        ~doc:"Fraction of receivers at 25% loss (paper §3.3).")

let population ~p ~receivers ~high_fraction =
  if high_fraction > 0.0 then
    Rmcast.Receivers.two_class ~p_low:p ~p_high:0.25 ~high_fraction ~count:receivers
  else Rmcast.Receivers.homogeneous ~p ~count:receivers

let expected_m scheme ~k ~h ~a ~population =
  match scheme with
  | `No_fec -> Rmcast.Arq.expected_transmissions ~population
  | `Layered -> Rmcast.Layered.expected_transmissions ~k ~h ~population
  | `Integrated -> Rmcast.Integrated.expected_transmissions ~k ~h ~a ~population ()
  | `Integrated_bound -> Rmcast.Integrated.expected_transmissions_unbounded ~k ~a ~population ()

(* --- analyze --------------------------------------------------------- *)

let analyze scheme k h a p receivers high_fraction =
  let population = population ~p ~receivers ~high_fraction in
  let m = expected_m scheme ~k ~h ~a ~population in
  Printf.printf "E[M] = %.6f transmissions per data packet\n" m;
  (match scheme with
  | `Layered ->
    Printf.printf "RM-layer residual loss q(k,n,p) = %.3e (raw p = %g)\n"
      (Rmcast.Layered.rm_loss_probability ~k ~h ~p) p
  | `Integrated_bound | `Integrated ->
    Printf.printf "expected extra parities E[L] = %.4f, P(no repair round) = %.4f\n"
      (Rmcast.Integrated.expected_extra ~k ~a ~population)
      (Rmcast.Integrated.group_extra_cdf ~k ~a ~population 0)
  | `No_fec -> ());
  `Ok ()

let analyze_cmd =
  let doc = "Closed-form expected transmissions per packet (paper §3)." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      ret (const analyze $ scheme_arg $ k_arg $ h_arg $ a_arg $ p_arg $ receivers_arg
           $ high_loss_arg))

(* --- sweep ----------------------------------------------------------- *)

let sweep scheme k h a p high_fraction upto csv jobs =
  let grid = Rmcast.Sweep.log_spaced_ints ~from:1 ~upto ~per_decade:4 in
  (* The cells are analytic (pure in the receiver count), so sharding them
     across domains cannot change the series. *)
  let series =
    Rmcast.Sweep.series_cells ?jobs ~seed:0 ~label:"E[M]" ~xs:grid
      ~f:(fun ~seed:_ receivers ->
        ( float_of_int receivers,
          expected_m scheme ~k ~h ~a ~population:(population ~p ~receivers ~high_fraction) ))
      ()
  in
  if csv then print_string (Rmcast.Sweep.to_csv [ series ])
  else Format.printf "%a@." Rmcast.Sweep.pp_table [ series ];
  `Ok ()

let sweep_cmd =
  let upto =
    Arg.(value & opt int 1_000_000 & info [ "to" ] ~docv:"R" ~doc:"Largest receiver count.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let doc = "E[M] versus the number of receivers." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      ret (const sweep $ scheme_arg $ k_arg $ h_arg $ a_arg $ p_arg $ high_loss_arg $ upto $ csv
           $ jobs_arg))

(* --- simulate -------------------------------------------------------- *)

let simulate scheme k h a p receivers seed reps fbt_height burst tier codec jobs =
  let runner_scheme =
    match (scheme, codec) with
    | `No_fec, _ -> Rmcast.Runner.No_fec
    | `Layered, _ -> Rmcast.Runner.Layered { h }
    | (`Integrated | `Integrated_bound), `Rse -> Rmcast.Runner.Integrated_nak { a }
    | (`Integrated | `Integrated_bound), codec -> Rmcast.Runner.Coded_nak { a; codec }
  in
  let print_estimate ~network_description estimate =
    let mean = Rmcast.Runner.mean_m estimate in
    let low, high =
      Rmcast.Stats.Accumulator.confidence95 estimate.Rmcast.Runner.transmissions_per_packet
    in
    Printf.printf "network: %s\n" network_description;
    Printf.printf "scheme : %s, k = %d, %d repetitions\n"
      (Rmcast.Runner.scheme_name runner_scheme) k reps;
    Printf.printf "E[M]   = %.4f   (95%% CI %.4f - %.4f)\n" mean low high;
    Printf.printf "rounds = %.3f, NAKs/TG = %.3f, unnecessary receptions/receiver/TG = %.4f\n"
      (Rmcast.Stats.Accumulator.mean estimate.Rmcast.Runner.rounds)
      (Rmcast.Stats.Accumulator.mean estimate.Rmcast.Runner.feedback)
      (Rmcast.Stats.Accumulator.mean estimate.Rmcast.Runner.unnecessary_per_receiver)
  in
  (* Without --jobs, one RNG drives the whole run — byte-identical to the
     historical sequential behaviour.  With --jobs N, the repetitions are
     split into fixed 100-rep chunks (a partition independent of N), each
     chunk runs with a seed derived from (seed, chunk index) on its own
     domain, and the per-chunk moments merge in index order — so any N,
     including 1, produces identical output. *)
  let chunked estimate_with =
    match jobs with
    | None -> estimate_with (Rmcast.Rng.create ~seed ()) reps
    | Some jobs ->
      let chunk_reps = 100 in
      let chunks = max 1 ((reps + chunk_reps - 1) / chunk_reps) in
      let estimates =
        Rmcast.Sweep.run_cells ~jobs ~seed
          ~f:(fun ~seed chunk ->
            let reps = min chunk_reps (reps - (chunk * chunk_reps)) in
            estimate_with (Rmcast.Rng.create ~seed ()) reps)
          (Array.init chunks (fun chunk -> chunk))
      in
      Array.fold_left Rmcast.Runner.merge estimates.(0)
        (Array.sub estimates 1 (Array.length estimates - 1))
  in
  match tier with
  | `Exact ->
    let make_network rng =
      match (fbt_height, burst) with
      | Some height, _ -> (Rmcast.Network.fbt rng ~height ~p, Rmcast.Timing.instantaneous)
      | None, Some mean_burst ->
        ( Rmcast.Network.temporal rng ~receivers ~make:(fun rng ->
              Rmcast.Loss.markov2 rng ~p ~mean_burst ~send_rate:25.0),
          Rmcast.Timing.paper_burst )
      | None, None ->
        (Rmcast.Network.independent rng ~receivers ~p, Rmcast.Timing.instantaneous)
    in
    let network_description =
      Rmcast.Network.description (fst (make_network (Rmcast.Rng.create ~seed ())))
    in
    let estimate =
      chunked (fun rng reps ->
          let network, timing = make_network rng in
          Rmcast.Runner.estimate network ~k ~scheme:runner_scheme ~timing ~reps ())
    in
    print_estimate ~network_description estimate;
    `Ok ()
  | `Aggregate -> (
    match fbt_height with
    | Some _ ->
      `Error
        ( false,
          "--tier aggregate requires loss to be iid across receivers; shared-loss trees \
           (--fbt-height) need the exact tier" )
    | None -> (
      match runner_scheme with
      | Rmcast.Runner.No_fec | Rmcast.Runner.Layered _ | Rmcast.Runner.Carousel _ ->
        `Error (false, "--tier aggregate only models the integrated schemes")
      | Rmcast.Runner.Coded_nak { codec; _ } -> (
        (* The same admission rule the aggregate interpreter itself applies,
           so rmc simulate / transfer / serve all surface one message. *)
        match Rmcast.Np_aggregate.check_config { Rmcast.Np.default_config with codec } with
        | Error e -> `Error (false, Rmcast.Error.to_string e)
        | Ok () ->
          (* Cauchy is MDS too, but the aggregate runner's closed-form
             counting is wired to the RSE scheme; same remedy as before. *)
          `Error
            ( false,
              "--tier aggregate counts receptions in closed form for the rse scheme \
               only; rerun with --codec rse or --tier exact" ))
      | Rmcast.Runner.Integrated_nak _ | Rmcast.Runner.Integrated_open_loop _ ->
        let channel, timing =
          match burst with
          | Some mean_burst ->
            ( Rmcast.Aggregate.bursty ~p ~mean_burst ~send_rate:25.0,
              Rmcast.Timing.paper_burst )
          | None -> (Rmcast.Aggregate.bernoulli ~p, Rmcast.Timing.instantaneous)
        in
        let estimate =
          chunked (fun rng reps ->
              Rmcast.Tg_aggregate.estimate rng ~receivers ~channel ~k
                ~scheme:runner_scheme ~timing ~reps ())
        in
        let network_description =
          Printf.sprintf "aggregate population, %d receivers, %s" receivers
            (Rmcast.Aggregate.channel_description channel)
        in
        print_estimate ~network_description estimate;
        `Ok ()))

let simulate_cmd =
  let reps = Arg.(value & opt int 200 & info [ "reps" ] ~docv:"N" ~doc:"Repetitions.") in
  let fbt =
    Arg.(
      value & opt (some int) None
      & info [ "fbt-height" ] ~docv:"D" ~doc:"Use a full binary tree of height D (shared loss).")
  in
  let burst =
    Arg.(
      value & opt (some float) None
      & info [ "burst" ] ~docv:"B" ~doc:"Bursty (Markov) loss with mean burst B packets.")
  in
  let tier =
    Arg.(
      value
      & opt (enum [ ("exact", `Exact); ("aggregate", `Aggregate) ]) `Exact
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Simulation tier: $(b,exact) walks every receiver per packet; \
             $(b,aggregate) evolves a count-vector population in O(k) per packet \
             (iid loss, integrated schemes only) and reaches R = 10^6.")
  in
  let doc = "Monte-Carlo estimate over a simulated network (paper §4)." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret (const simulate $ scheme_arg $ k_arg $ h_arg $ a_arg $ p_arg $ receivers_arg
           $ seed_arg $ reps $ fbt $ burst $ tier $ codec_arg $ jobs_arg))

(* --- plan ------------------------------------------------------------ *)

let plan k p receivers target measured_m =
  if p <= 0.0 || p >= 1.0 then `Error (false, "--p must lie in (0,1) for planning")
  else begin
    let effective =
      match measured_m with
      | None -> receivers
      | Some m -> Rmcast.Planner.effective_receivers ~measured_m_nofec:m ~p
    in
    let plan = Rmcast.Planner.plan ~k ~p ~receivers:effective ~target_single_round:target () in
    (match measured_m with
    | None -> Printf.printf "k = %d, p = %g, R = %d:\n" k p receivers
    | Some m ->
      Printf.printf "k = %d, p = %g, R = %d:\n" k p receivers;
      Printf.printf
        "  effective R             = %d (independent population whose no-FEC E[M] \
         matches the measured %g; paper §4.1 inverted)\n"
        effective m);
    Printf.printf "  proactive parities (a)  = %d\n" plan.Rmcast.Planner.proactive;
    Printf.printf "  parity budget (h)       = %d\n" plan.Rmcast.Planner.budget;
    Printf.printf "  predicted E[M]          = %.4f\n" plan.Rmcast.Planner.expected_m;
    Printf.printf "  P(no repair round)      = %.4f\n"
      plan.Rmcast.Planner.single_round_probability;
    `Ok ()
  end

let plan_cmd =
  let target =
    Arg.(
      value & opt float 0.9
      & info [ "target" ] ~docv:"Q" ~doc:"Target probability of single-round delivery.")
  in
  let measured_m =
    Arg.(
      value
      & opt (some float) None
      & info [ "measured-m" ] ~docv:"M"
          ~doc:
            "Measured no-FEC transmissions-per-packet. When given, the plan is drawn for \
             the $(i,effective) receiver count whose independent-loss E[M] matches M \
             (paper §4.1 inverted) instead of the raw $(b,--receivers) — the antidote to \
             over-provisioning under spatially correlated loss.")
  in
  let doc = "Choose proactive parities and parity budget for a population." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(ret (const plan $ k_arg $ p_arg $ receivers_arg $ target $ measured_m))

(* --- endhost --------------------------------------------------------- *)

let endhost k p receivers =
  let n2 = Rmcast.Endhost.n2 ~p ~receivers () in
  let np = Rmcast.Endhost.np ~p ~k ~receivers () in
  let np_pre = Rmcast.Endhost.np ~pre_encoded:true ~p ~k ~receivers () in
  let show name (rates : Rmcast.Endhost.rates) =
    Printf.printf "  %-16s sender %8.4f  receiver %8.4f  throughput %8.4f\n" name
      (rates.Rmcast.Endhost.sender /. 1000.0)
      (rates.Rmcast.Endhost.receiver /. 1000.0)
      (rates.Rmcast.Endhost.throughput /. 1000.0)
  in
  Printf.printf "End-host model (packets/ms), k = %d, p = %g, R = %d:\n" k p receivers;
  show "N2" n2;
  show "NP" np;
  show "NP pre-encoded" np_pre;
  `Ok ()

let endhost_cmd =
  let doc = "Processing rates and throughput of N2 vs NP (paper §5)." in
  Cmd.v (Cmd.info "endhost" ~doc) Term.(ret (const endhost $ k_arg $ p_arg $ receivers_arg))

(* --- codec ----------------------------------------------------------- *)

let payload_arg =
  Arg.(value & opt int 1024 & info [ "payload" ] ~docv:"BYTES" ~doc:"Packet payload size.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let codec_encode input output k h payload_size =
  let contents = read_file input in
  let packets = Rmcast.Transfer.packetize ~payload_size contents in
  let buffer = Buffer.create (Array.length packets * (payload_size + 32)) in
  let tg_count = (Array.length packets + k - 1) / k in
  for tg_id = 0 to tg_count - 1 do
    let base = tg_id * k in
    let len = min k (Array.length packets - base) in
    let data = Array.sub packets base len in
    let codec = Rmcast.Rse.create ~k:len ~h () in
    Array.iteri
      (fun index payload ->
        Buffer.add_bytes buffer
          (Rmcast.Header.encode (Rmcast.Header.Data { tg_id; k = len; index; payload })))
      data;
    Array.iteri
      (fun index payload ->
        Buffer.add_bytes buffer
          (Rmcast.Header.encode
             (Rmcast.Header.Parity { tg_id; k = len; index; round = 0; payload })))
      (Rmcast.Rse.encode codec data)
  done;
  write_file output (Buffer.contents buffer);
  Printf.printf "%s: %d bytes -> %s: %d packets in %d TGs (k=%d, h=%d)\n" input
    (String.length contents) output
    (Array.length packets + (tg_count * h))
    tg_count k h;
  `Ok ()

let parse_container contents =
  let messages = ref [] in
  let offset = ref 0 in
  let header = Rmcast.Header.header_size in
  while !offset + header <= String.length contents do
    let payload_len =
      Int32.to_int (Bytes.get_int32_be (Bytes.of_string (String.sub contents (!offset + 18) 4)) 0)
    in
    let total = header + payload_len in
    let chunk = Bytes.of_string (String.sub contents !offset total) in
    (match Rmcast.Header.decode chunk with
    | Ok message -> messages := message :: !messages
    | Error e -> failwith ("corrupt container: " ^ e));
    offset := !offset + total
  done;
  List.rev !messages

let codec_decode input output payload_size drop_rate seed =
  let rng = Rmcast.Rng.create ~seed () in
  let messages = parse_container (read_file input) in
  let kept, dropped =
    List.partition (fun _ -> not (Rmcast.Rng.bernoulli rng drop_rate)) messages
  in
  Printf.printf "container: %d packets, dropped %d (rate %g)\n" (List.length messages)
    (List.length dropped) drop_rate;
  (* Group by TG. *)
  let groups : (int, (int * int * Bytes.t) list ref) Hashtbl.t = Hashtbl.create 16 in
  let push tg_id k index payload =
    let cell =
      match Hashtbl.find_opt groups tg_id with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.replace groups tg_id c;
        c
    in
    cell := (k, index, payload) :: !cell
  in
  List.iter
    (function
      | Rmcast.Header.Data { tg_id; k; index; payload } -> push tg_id k index payload
      | Rmcast.Header.Parity { tg_id; k; index; round = _; payload } ->
        push tg_id k (k + index) payload
      | Rmcast.Header.Poll _ | Rmcast.Header.Nak _ | Rmcast.Header.Exhausted _ -> ())
    kept;
  let tg_ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) groups []) in
  let recovered =
    List.map
      (fun tg_id ->
        let entries = !(Hashtbl.find groups tg_id) in
        let k = match entries with (k, _, _) :: _ -> k | [] -> failwith "empty TG" in
        (* The generator only needs rows up to the highest parity index
           actually present in the container. *)
        let h =
          List.fold_left (fun acc (_, index, _) -> max acc (index - k + 1)) 0 entries
        in
        let codec = Rmcast.Rse.create ~k ~h () in
        let received = Array.of_list (List.map (fun (_, index, payload) -> (index, payload)) entries) in
        if Array.length received < k then
          failwith (Printf.sprintf "TG %d unrecoverable: %d of %d packets" tg_id
                      (Array.length received) k);
        Rmcast.Rse.decode codec received)
      tg_ids
  in
  let packets = Array.concat recovered in
  write_file output (Rmcast.Transfer.reassemble ~payload_size packets);
  Printf.printf "recovered %d TGs -> %s\n" (List.length tg_ids) output;
  `Ok ()

let codec_encode_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT") in
  let doc = "Encode a file into a container of data + parity packets." in
  Cmd.v
    (Cmd.info "encode" ~doc)
    Term.(ret (const codec_encode $ input $ output $ k_arg $ h_arg $ payload_arg))

let codec_decode_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT") in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"RATE" ~doc:"Random packet drop rate.")
  in
  let doc = "Decode a container back into the original file, tolerating drops." in
  Cmd.v
    (Cmd.info "decode" ~doc)
    Term.(ret (const codec_decode $ input $ output $ payload_arg $ drop $ seed_arg))

let codec_cmd =
  let doc = "File-level FEC using the wire format." in
  Cmd.group (Cmd.info "codec" ~doc) [ codec_encode_cmd; codec_decode_cmd ]

(* --- transfer -------------------------------------------------------- *)

let transfer k h a p receivers seed bytes codec controller churn_spec =
  match Option.fold ~none:(Ok []) ~some:churn_of_string churn_spec with
  | Error message -> `Error (false, "--churn: " ^ message)
  | Ok churn -> (
    let rng = Rmcast.Rng.create ~seed () in
    let network = Rmcast.Network.independent (Rmcast.Rng.split rng) ~receivers ~p in
    let message = String.init bytes (fun i -> Char.chr ((i * 37) mod 256)) in
    let profile = { Rmcast.Profile.default with k; h; proactive = a; codec; controller } in
    match
      Rmcast.Transfer.send ~profile ~churn ~network ~rng:(Rmcast.Rng.split rng) message
    with
    | Error e -> `Error (false, Rmcast.Error.to_string e)
    | Ok outcome ->
      let report = outcome.Rmcast.Transfer.report in
      Printf.printf
        "verified=%b data=%d parity=%d naks=%d suppressed=%d E[M]=%.4f efficiency=%.1f%%\n"
        outcome.Rmcast.Transfer.verified report.Rmcast.Np.data_tx report.Rmcast.Np.parity_tx
        report.Rmcast.Np.naks_sent report.Rmcast.Np.naks_suppressed
        (Rmcast.Np.transmissions_per_packet report)
        (100.0 *. outcome.Rmcast.Transfer.efficiency);
      `Ok ())

let transfer_cmd =
  let bytes =
    Arg.(value & opt int 100_000 & info [ "bytes" ] ~docv:"N" ~doc:"Message size in bytes.")
  in
  let doc = "Run a full NP transfer over a simulated lossy network." in
  Cmd.v
    (Cmd.info "transfer" ~doc)
    Term.(
      ret (const transfer $ k_arg $ Arg.(value & opt int 40 & info [ "parities" ]) $ a_arg $ p_arg
           $ receivers_arg $ seed_arg $ bytes $ codec_arg $ controller_arg $ churn_arg))

(* --- serve ------------------------------------------------------------ *)

let serve_sim ~profile ~sessions ~receivers ~p ~seed ~bytes ~show_metrics =
  let module Scheduler = Rmcast.Scheduler in
  let module Transfer = Rmcast.Transfer in
  let rng = Rmcast.Rng.create ~seed () in
  let network = Rmcast.Network.independent (Rmcast.Rng.split rng) ~receivers ~p in
  match Scheduler.create ~profile ~network ~rng:(Rmcast.Rng.split rng) () with
  | Error e -> `Error (false, Rmcast.Error.to_string e)
  | Ok scheduler -> (
    let rec add sid =
      if sid >= sessions then Ok ()
      else
        (* Disjoint per-session payloads so cross-session corruption cannot
           verify by accident. *)
        let message =
          String.init bytes (fun i -> Char.chr ((i * 31 + sid * 97 + 13) mod 256))
        in
        match Scheduler.add scheduler ~name:(Printf.sprintf "session-%03d" sid) message with
        | Error e -> Error e
        | Ok () -> add (sid + 1)
    in
    match add 0 with
    | Error e -> `Error (false, Rmcast.Error.to_string e)
    | Ok () ->
      let metrics = Rmcast.Metrics.create () in
      let summary = Scheduler.run ~metrics scheduler in
      Printf.printf "%d sessions x %d bytes, %s\n" sessions bytes
        (Rmcast.Network.description network);
      Printf.printf "  %-12s %-8s %6s %7s %6s %7s %9s %9s\n" "session" "verified" "data"
        "parity" "naks" "E[M]" "start" "finish";
      List.iter
        (fun (r : Scheduler.result_) ->
          let report = r.outcome.Transfer.report in
          Printf.printf "  %-12s %-8b %6d %7d %6d %7.3f %9.3f %9.3f\n" r.name
            r.outcome.Transfer.verified report.Rmcast.Np.data_tx report.Rmcast.Np.parity_tx
            report.Rmcast.Np.naks_sent
            (Rmcast.Np.transmissions_per_packet report)
            r.started_at r.finished_at)
        summary.Scheduler.results;
      Printf.printf "all verified : %b\n" summary.Scheduler.all_verified;
      Printf.printf "makespan     : %.3f virtual s\n" summary.Scheduler.makespan;
      Printf.printf "goodput      : %.1f user kB / virtual s\n"
        (float_of_int summary.Scheduler.total_bytes /. summary.Scheduler.makespan /. 1e3);
      if show_metrics then begin
        print_endline "counters:";
        List.iter
          (fun (name, value) -> Printf.printf "  %-32s %d\n" name value)
          (Rmcast.Metrics.counters metrics)
      end;
      if summary.Scheduler.all_verified then `Ok ()
      else `Error (false, "some sessions failed verification"))

let serve_udp ~profile ~sessions ~receivers ~p ~seed ~bytes ~show_metrics ~capture
    ~shards ~multicast =
  let module Udp = Rmcast.Udp_np in
  let config = Udp.config_of_profile profile in
  let payload = profile.Rmcast.Profile.payload_size in
  let packets = max 1 ((bytes + payload - 1) / payload) in
  let rng = Rmcast.Rng.create ~seed () in
  let data =
    Array.init sessions (fun _ ->
        Array.init packets (fun _ ->
            Bytes.init payload (fun _ -> Char.chr (Rmcast.Rng.int rng 256))))
  in
  let transport = if multicast then `Multicast else `Unicast in
  let metrics = Rmcast.Metrics.create () in
  let recorder = Option.map (fun _ -> Rmcast.Recorder.create ()) capture in
  match
    if shards > 1 then
      Udp.run_sharded ~config ~metrics ~transport ~shards ~receivers ~loss:p
        ~seed:(seed + 1) ~sessions:data ()
    else
      Udp.run_multi ~config ~metrics ?recorder ~transport ~receivers ~loss:p
        ~seed:(seed + 1) ~sessions:data ()
  with
  | Error e -> `Error (false, Rmcast.Error.to_string e)
  | Ok report ->
    (match (capture, recorder) with
    | Some path, Some recorder ->
      Rmcast.Recorder.save ~path recorder;
      Printf.printf "capture: %d entries -> %s\n" (Rmcast.Recorder.length recorder) path
    | _ -> ());
    Printf.printf "%d sessions x %d packets over UDP loopback, %d receivers, loss %g\n"
      sessions packets receivers p;
    Printf.printf "  %-8s %-8s %4s %6s %7s %6s %10s\n" "session" "verified" "tgs" "data"
      "parity" "polls" "completed";
    Array.iter
      (fun (s : Udp.session_report) ->
        Printf.printf "  %-8d %-8b %4d %6d %7d %6d %6d/%d\n" s.Udp.session s.Udp.verified
          s.Udp.transmission_groups s.Udp.data_tx s.Udp.parity_tx s.Udp.polls s.Udp.completed
          receivers)
      report.Udp.session_reports;
    Printf.printf "all verified : %b\n" report.Udp.all_verified;
    Printf.printf "naks         : %d sent, %d suppressed\n" report.Udp.naks_sent
      report.Udp.naks_suppressed;
    Printf.printf "dropped      : %d (decode failures %d)\n" report.Udp.datagrams_dropped
      report.Udp.decode_failures;
    Printf.printf "wall         : %.3f s\n" report.Udp.wall_seconds;
    if show_metrics then begin
      print_endline "counters:";
      List.iter
        (fun (name, value) -> Printf.printf "  %-32s %d\n" name value)
        report.Udp.counters;
      print_endline "gauges:";
      List.iter
        (fun (name, value) -> Printf.printf "  %-36s %.1f\n" name value)
        (Rmcast.Metrics.gauges metrics)
    end;
    if report.Udp.all_verified then `Ok ()
    else `Error (false, "some sessions failed verification")

let serve sessions transport k h a payload p receivers seed bytes show_metrics capture
    shards multicast codec controller =
  if sessions < 1 then `Error (false, "--sessions must be >= 1")
  else if capture <> None && transport <> `Udp then
    `Error (false, "--capture requires --transport udp")
  else if shards < 1 then `Error (false, "--shards must be >= 1")
  else if (shards > 1 || multicast) && transport <> `Udp then
    `Error (false, "--shards/--multicast require --transport udp")
  else if capture <> None && shards > 1 then
    `Error
      (false, "--capture records one driver's event stream; it cannot span --shards")
  else if multicast && not (Rmcast.Udp_multicast.is_available ()) then
    `Error (false, "--multicast: this environment does not route multicast over loopback")
  else
    let profile =
      { Rmcast.Profile.default with
        k; h; proactive = a; payload_size = payload; codec; controller }
    in
    match Rmcast.Profile.validate profile with
    | Error e -> `Error (false, Rmcast.Error.to_string e)
    | Ok profile -> (
      match transport with
      | `Sim -> serve_sim ~profile ~sessions ~receivers ~p ~seed ~bytes ~show_metrics
      | `Udp ->
        serve_udp ~profile ~sessions ~receivers ~p ~seed ~bytes ~show_metrics ~capture
          ~shards ~multicast)

let serve_cmd =
  let sessions =
    Arg.(value & opt int 8 & info [ "sessions"; "n" ] ~docv:"N" ~doc:"Concurrent sessions.")
  in
  let transport =
    let parse = function
      | "sim" | "simulated" -> Ok `Sim
      | "udp" -> Ok `Udp
      | other -> Error (`Msg (Printf.sprintf "unknown transport %S" other))
    in
    let print ppf t = Format.pp_print_string ppf (match t with `Sim -> "sim" | `Udp -> "udp") in
    Arg.(
      value
      & opt (conv (parse, print)) `Sim
      & info [ "transport" ] ~docv:"TRANSPORT"
          ~doc:
            "$(i,sim): interleave flows on the virtual-time scheduler; $(i,udp): multiplex \
             real loopback sessions over one reactor and a shared sender socket.")
  in
  let k = Arg.(value & opt int 20 & info [ "k"; "tg-size" ] ~docv:"K" ~doc:"TG size.") in
  let h =
    Arg.(value & opt int 40 & info [ "parities" ] ~docv:"H" ~doc:"Parity budget per group.")
  in
  let payload =
    Arg.(value & opt int 1024 & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload per packet.")
  in
  let receivers =
    Arg.(value & opt int 100 & info [ "r"; "receivers" ] ~docv:"R" ~doc:"Receivers per session.")
  in
  let bytes =
    Arg.(
      value & opt int 20_000
      & info [ "bytes" ] ~docv:"BYTES" ~doc:"User bytes transferred by each session.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Dump the full counter registry (per-session scopes included) after the run.")
  in
  let capture =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"FILE"
          ~doc:
            "Record the sans-IO event/effect streams of every session to FILE (UDP transport \
             only); verify later with $(b,rmc replay) FILE.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"D"
          ~doc:
            "Partition the sessions across D domains (UDP transport only), each running \
             its own reactor, sockets and buffer pool; counters merge into one registry. \
             Clamped to the session count.")
  in
  let multicast =
    Arg.(
      value & flag
      & info [ "multicast" ]
          ~doc:
            "Use real multicast sockets (one send per datagram, kernel fan-out) instead \
             of the unicast shim (UDP transport only); requires an environment that \
             routes 239.0.0.0/8 over loopback.")
  in
  let doc = "Serve N concurrent sessions over one engine (scheduler or UDP mux)." in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret (const serve $ sessions $ transport $ k $ h $ a_arg $ payload $ p_arg $ receivers
           $ seed_arg $ bytes $ metrics $ capture $ shards $ multicast $ codec_arg
           $ controller_arg))

(* --- latency --------------------------------------------------------- *)

let latency k h a p receivers spacing feedback_delay =
  let population = Rmcast.Receivers.homogeneous ~p ~count:receivers in
  let timing = { Rmcast.Latency.spacing; feedback_delay } in
  Printf.printf "Expected TG completion time [s], k = %d, p = %g, R = %d\n" k p receivers;
  Printf.printf "(packet spacing %g s, feedback delay %g s)\n" spacing feedback_delay;
  Printf.printf "  %-22s %10.4f\n" "no FEC" (Rmcast.Latency.no_fec ~population ~k timing);
  Printf.printf "  %-22s %10.4f\n"
    (Printf.sprintf "layered (k+%d)" h)
    (Rmcast.Latency.layered ~population ~k ~h timing);
  Printf.printf "  %-22s %10.4f\n" "integrated"
    (Rmcast.Latency.integrated ~population ~k timing ());
  if a > 0 then
    Printf.printf "  %-22s %10.4f\n"
      (Printf.sprintf "integrated (a=%d)" a)
      (Rmcast.Latency.integrated ~population ~k ~a timing ());
  `Ok ()

let latency_cmd =
  let spacing =
    Arg.(value & opt float 0.04 & info [ "spacing" ] ~docv:"S" ~doc:"Packet spacing, seconds.")
  in
  let feedback_delay =
    Arg.(value & opt float 0.3 & info [ "feedback-delay" ] ~docv:"T" ~doc:"Round gap, seconds.")
  in
  let doc = "Expected completion latency of the recovery schemes." in
  Cmd.v
    (Cmd.info "latency" ~doc)
    Term.(
      ret (const latency $ k_arg $ h_arg $ a_arg $ p_arg $ receivers_arg $ spacing
           $ feedback_delay))

(* --- feedback ---------------------------------------------------------- *)

let feedback k a p receivers slot delay seed =
  let slot_counts = Rmcast.Feedback.slot_counts ~k ~a ~p ~receivers in
  let firers = Array.fold_left ( + ) 0 slot_counts in
  Printf.printf "Round 1 of NP at k = %d, a = %d, p = %g, R = %d:\n" k a p receivers;
  Printf.printf "  receivers needing repair : %d\n" firers;
  Printf.printf "  slot occupancy           : [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int slot_counts)));
  let naks =
    Rmcast.Feedback.simulate_suppression
      (Rmcast.Rng.create ~seed ())
      ~slot_counts ~slot ~delay ~reps:5_000
  in
  Printf.printf "  expected NAKs (slot %.0f ms, delay %.0f ms): %.2f\n" (1000.0 *. slot)
    (1000.0 *. delay) naks;
  Printf.printf "  without slotting (one window): %.2f\n"
    (Rmcast.Feedback.expected_naks_single_window ~firers ~window:slot ~delay);
  Printf.printf "  recommended slot for this delay: %.0f ms\n"
    (1000.0 *. Rmcast.Feedback.recommended_slot ~delay);
  `Ok ()

let feedback_cmd =
  let slot = Arg.(value & opt float 0.1 & info [ "slot" ] ~docv:"TS" ~doc:"Slot size, seconds.") in
  let delay =
    Arg.(value & opt float 0.025 & info [ "delay" ] ~docv:"D" ~doc:"One-way delay, seconds.")
  in
  let doc = "NAK volume under slotting and damping." in
  Cmd.v
    (Cmd.info "feedback" ~doc)
    Term.(ret (const feedback $ k_arg $ a_arg $ p_arg $ receivers_arg $ slot $ delay $ seed_arg))

(* --- trace ----------------------------------------------------------- *)

let trace_record out model p burst packets rate seed =
  let rng = Rmcast.Rng.create ~seed () in
  let spacing = 1.0 /. rate in
  let loss =
    match model with
    | `Bernoulli -> Rmcast.Loss.bernoulli rng ~p
    | `Markov -> Rmcast.Loss.markov2 rng ~p ~mean_burst:burst ~send_rate:rate
  in
  let trace = Rmcast.Trace_io.record loss ~packets ~spacing in
  Rmcast.Trace_io.save ~path:out trace;
  Format.printf "%s:@,%a@." out Rmcast.Trace_io.pp_stats (Rmcast.Trace_io.stats trace);
  `Ok ()

let trace_stats path =
  let trace = Rmcast.Trace_io.load ~path in
  Format.printf "%a@." Rmcast.Trace_io.pp_stats (Rmcast.Trace_io.stats trace);
  `Ok ()

let trace_model_arg =
  let parse = function
    | "bernoulli" -> Ok `Bernoulli
    | "markov" | "burst" -> Ok `Markov
    | other -> Error (`Msg (Printf.sprintf "unknown model %S" other))
  in
  let print ppf m =
    Format.pp_print_string ppf (match m with `Bernoulli -> "bernoulli" | `Markov -> "markov")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Markov
    & info [ "model" ] ~docv:"MODEL" ~doc:"Loss model: bernoulli or markov (bursty).")

let trace_record_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTPUT") in
  let burst =
    Arg.(value & opt float 2.0 & info [ "burst" ] ~docv:"B" ~doc:"Mean burst length (markov).")
  in
  let packets =
    Arg.(value & opt int 100_000 & info [ "packets" ] ~docv:"N" ~doc:"Trace length in packets.")
  in
  let rate =
    Arg.(value & opt float 25.0 & info [ "rate" ] ~docv:"PKTS/S" ~doc:"Packet rate.")
  in
  let doc = "Record a synthetic loss trace to a file." in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(
      ret (const trace_record $ out $ trace_model_arg $ p_arg $ burst $ packets $ rate $ seed_arg))

let trace_stats_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let doc = "Loss rate and burst statistics of a trace file." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const trace_stats $ path))

let trace_cmd =
  let doc = "Record and inspect packet-loss traces." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_record_cmd; trace_stats_cmd ]

(* --- udp --------------------------------------------------------------- *)

let udp receivers p seed packets payload metrics faults capture multicast codec controller =
  match
    match faults with
    | None -> Ok None
    | Some spec_text ->
      Result.map Option.some (Rmcast.Fault.spec_of_string spec_text)
  with
  | Error message -> `Error (false, "--faults: " ^ message)
  | Ok faults when multicast && not (Rmcast.Udp_multicast.is_available ()) ->
    ignore faults;
    `Error (false, "--multicast: this environment does not route multicast over loopback")
  | Ok faults ->
    let config =
      { Rmcast.Udp_np.default_config with payload_size = payload; codec; controller }
    in
    let transport = if multicast then `Multicast else `Unicast in
    let rng = Rmcast.Rng.create ~seed () in
    let data =
      Array.init packets (fun _ ->
          Bytes.init payload (fun _ -> Char.chr (Rmcast.Rng.int rng 256)))
    in
    let recorder = Option.map (fun _ -> Rmcast.Recorder.create ()) capture in
    let registry = Rmcast.Metrics.create () in
    match
      Rmcast.Udp_np.run_local ~config ~metrics:registry ?recorder ?faults ~transport
        ~receivers ~loss:p ~seed:(seed + 1) ~data ()
    with
    | Error e -> `Error (false, Rmcast.Error.to_string e)
    | Ok report ->
    (match (capture, recorder) with
    | Some path, Some recorder ->
      Rmcast.Recorder.save ~path recorder;
      Printf.printf "capture: %d entries -> %s\n" (Rmcast.Recorder.length recorder) path
    | _ -> ());
    Printf.printf
      "completed %d/%d receivers, verified=%b\n\
       data=%d parity=%d naks=%d suppressed=%d dropped=%d decode_failures=%d\n\
       wall=%.3f s\n"
      report.Rmcast.Udp_np.completed receivers report.Rmcast.Udp_np.verified
      report.Rmcast.Udp_np.data_tx report.Rmcast.Udp_np.parity_tx report.Rmcast.Udp_np.naks_sent
      report.Rmcast.Udp_np.naks_suppressed report.Rmcast.Udp_np.datagrams_dropped
      report.Rmcast.Udp_np.decode_failures report.Rmcast.Udp_np.wall_seconds;
    if metrics then begin
      print_endline "counters:";
      List.iter
        (fun (name, value) -> Printf.printf "  %-24s %d\n" name value)
        report.Rmcast.Udp_np.counters;
      print_endline "gauges:";
      List.iter
        (fun (name, value) -> Printf.printf "  %-36s %.1f\n" name value)
        (Rmcast.Metrics.gauges registry)
    end;
    if report.Rmcast.Udp_np.verified then `Ok () else `Error (false, "delivery failed")

let udp_cmd =
  let packets =
    Arg.(value & opt int 100 & info [ "packets" ] ~docv:"N" ~doc:"Number of data packets.")
  in
  let payload =
    Arg.(value & opt int 512 & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload size per packet.")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the full counter registry after the run.")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject faults at the sender's datagram boundary, e.g. \
             $(i,drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01,seed=7).")
  in
  let capture =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"FILE"
          ~doc:
            "Record the sans-IO event/effect streams to FILE for later $(b,rmc replay).")
  in
  let multicast =
    Arg.(
      value & flag
      & info [ "multicast" ]
          ~doc:
            "Use real multicast sockets (one send per datagram, kernel fan-out) instead \
             of the unicast shim; requires an environment that routes 239.0.0.0/8 over \
             loopback.")
  in
  let doc = "Run protocol NP over real UDP sockets on the loopback interface." in
  Cmd.v
    (Cmd.info "udp" ~doc)
    Term.(
      ret (const udp $ receivers_arg $ p_arg $ seed_arg $ packets $ payload $ metrics $ faults
           $ capture $ multicast $ codec_arg $ controller_arg))

(* --- replay ------------------------------------------------------------ *)

let replay path =
  match Rmcast.Recorder.load ~path with
  | Error message -> `Error (false, message)
  | Ok recorder -> (
    match Rmcast.Np_replay.replay recorder with
    | Error message -> `Error (false, Printf.sprintf "%s: %s" path message)
    | Ok outcome -> (
      Printf.printf "%s: %d entries (%d machine events, %d effects checked)\n" path
        (Rmcast.Recorder.length recorder)
        outcome.Rmcast.Np_replay.events outcome.Rmcast.Np_replay.effects;
      match outcome.Rmcast.Np_replay.divergence with
      | None ->
        print_endline "replay: OK (every recorded effect reproduced, in order)";
        `Ok ()
      | Some reason -> `Error (false, "replay diverged: " ^ reason)))

let replay_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"CAPTURE") in
  let doc =
    "Re-execute a capture ($(b,rmc udp --capture), $(b,rmc serve --transport udp --capture)) \
     through the sans-IO NP core and verify the machines reproduce the recorded effect \
     streams bit-for-bit."
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(ret (const replay $ path))

(* --- faults ------------------------------------------------------------- *)

let faults_run spec_text packets payload seed =
  match Rmcast.Fault.spec_of_string spec_text with
  | Error message -> `Error (false, message)
  | Ok spec ->
    let spec = if spec.Rmcast.Fault.seed = 0 then { spec with Rmcast.Fault.seed = seed } else spec in
    let metrics = Rmcast.Metrics.create () in
    let trace = Rmcast.Event_trace.create ~capacity:16 () in
    let shim = Rmcast.Fault.create ~metrics ~trace spec in
    let rng = Rmcast.Rng.create ~seed () in
    let decode_failures = ref 0 and emitted = ref 0 in
    for index = 0 to packets - 1 do
      let payload_bytes = Bytes.init payload (fun _ -> Char.chr (Rmcast.Rng.int rng 256)) in
      let packet =
        Rmcast.Header.encode
          (Rmcast.Header.Data { tg_id = index / 8; k = 8; index = index mod 8; payload = payload_bytes })
      in
      (* Synchronous harness: deferred (delayed) sends fire immediately. *)
      Rmcast.Fault.apply shim
        ~now:(float_of_int index *. 0.001)
        ~defer:(fun _delay thunk -> thunk ())
        ~send:(fun bytes ->
          incr emitted;
          match Rmcast.Header.decode bytes with
          | Ok _ -> ()
          | Error _ -> incr decode_failures)
        packet
    done;
    Printf.printf "spec: %s\n" (Rmcast.Fault.spec_to_string spec);
    Printf.printf "fed %d datagrams, emitted %d, decode failures %d\n" packets !emitted
      !decode_failures;
    Format.printf "%a@." Rmcast.Fault.pp_stats (Rmcast.Fault.stats shim);
    print_endline "counters:";
    List.iter
      (fun (name, value) -> Printf.printf "  %-24s %d\n" name value)
      (Rmcast.Metrics.counters metrics);
    let events = Rmcast.Event_trace.events trace in
    if events <> [] then begin
      Printf.printf "trace tail (%d of %d events):\n" (List.length events)
        (Rmcast.Event_trace.recorded trace);
      List.iter
        (fun event ->
          Printf.printf "  %8.3f  %-16s %s\n" event.Rmcast.Event_trace.wall
            event.Rmcast.Event_trace.name event.Rmcast.Event_trace.detail)
        events
    end;
    `Ok ()

let faults_cmd =
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Fault specification, comma-separated key=value pairs: $(i,drop)=P or \
             $(i,drop)=burst:P:LEN:RATE, $(i,dup)=P, $(i,reorder)=P, $(i,delay)=S or \
             $(i,delay)=MIN:MAX, $(i,corrupt)=P, $(i,seed)=N.")
  in
  let packets =
    Arg.(value & opt int 1000 & info [ "packets" ] ~docv:"N" ~doc:"Datagrams to feed through.")
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Payload size per datagram.")
  in
  let doc = "Exercise a fault-injection spec against synthetic datagrams." in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(ret (const faults_run $ spec $ packets $ payload $ seed_arg))

(* --- capacity ----------------------------------------------------------- *)

let capacity k p target =
  let show name rates_at =
    let cap = Rmcast.Endhost.capacity ~rates_at ~target in
    if cap >= 100_000_000 then Printf.printf "  %-16s unbounded (>= 10^8)\n" name
    else Printf.printf "  %-16s R <= %d\n" name cap
  in
  Printf.printf "Largest group meeting %.1f pkts/s end-system throughput (p = %g, k = %d):\n"
    target p k;
  show "N1" (fun receivers -> Rmcast.Endhost_n1.n1 ~p ~receivers ());
  show "N2" (fun receivers -> Rmcast.Endhost.n2 ~p ~receivers ());
  show "NP" (fun receivers -> Rmcast.Endhost.np ~p ~k ~receivers ());
  show "NP pre-encoded" (fun receivers ->
      Rmcast.Endhost.np ~pre_encoded:true ~p ~k ~receivers ());
  `Ok ()

let capacity_cmd =
  let target =
    Arg.(value & opt float 500.0 & info [ "target" ] ~docv:"PKTS/S" ~doc:"Required throughput.")
  in
  let doc = "Capacity planning: largest group each protocol can serve." in
  Cmd.v (Cmd.info "capacity" ~doc) Term.(ret (const capacity $ k_arg $ p_arg $ target))

(* --- main ------------------------------------------------------------ *)

let () =
  let doc = "parity-based loss recovery for reliable multicast (SIGCOMM'97 reproduction)" in
  let info = Cmd.info "rmc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; sweep_cmd; simulate_cmd; plan_cmd; endhost_cmd; latency_cmd;
            feedback_cmd; capacity_cmd; codec_cmd; transfer_cmd; serve_cmd; udp_cmd;
            replay_cmd; faults_cmd; trace_cmd ]))
